// Cooperative termination (Dwork/Skeen, via the paper's note that plain
// two-phase commit blocks in-doubt participants "until other nodes recover"
// and that "TABS could use one of the other commit algorithms that do not
// have this deficiency"): an in-doubt participant whose coordinator is down
// learns the verdict from a sibling participant instead of staying blocked.

#include <gtest/gtest.h>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;

// The 2PC in-doubt window is the subject under test (Paxos Commit has no
// cooperative-termination protocol to exercise), so the mode is pinned.
WorldOptions TwoPhaseOptions() {
  WorldOptions opt;
  opt.commit_mode = txn::CommitMode::kTwoPhase;
  return opt;
}

class CooperativeTerminationTest : public ::testing::Test {
 protected:
  CooperativeTerminationTest() : world_(3, TwoPhaseOptions()) {
    a1_ = world_.AddServerOf<ArrayServer>(1, "a1", 8u);
    a2_ = world_.AddServerOf<ArrayServer>(2, "a2", 8u);
    a3_ = world_.AddServerOf<ArrayServer>(3, "a3", 8u);
  }

  World world_;
  ArrayServer* a1_;
  ArrayServer* a2_;
  ArrayServer* a3_;
};

TEST_F(CooperativeTerminationTest, SiblingSuppliesCommitWhenCoordinatorIsDown) {
  // Lose only the commit datagram 1 -> 2: node 3 learns the commit, node 2
  // stays in doubt. The coordinator then crashes. Node 2 resolves through
  // its sibling (node 3) without waiting for node 1.
  int count_1_2 = 0;
  world_.network().SetDatagramLoss([&](NodeId from, NodeId to) {
    if (from == 1 && to == 2) {
      ++count_1_2;
      return count_1_2 == 2;  // the commit, not the prepare
    }
    return false;
  });
  Status outcome = Status::kInternal;
  world_.RunApp(1, [&](Application& app) {
    outcome = app.Transaction([&](const server::Tx& tx) {
      a1_->SetCell(tx, 0, 1);
      a2_->SetCell(tx, 0, 2);
      a3_->SetCell(tx, 0, 3);
      return Status::kOk;
    });
  });
  EXPECT_EQ(outcome, Status::kOk);
  world_.network().SetDatagramLoss({});

  world_.RunApp(3, [&](Application& app) {
    world_.CrashNode(1);  // the coordinator is gone
    auto in_doubt = world_.tm(2).InDoubt();
    ASSERT_EQ(in_doubt.size(), 1u);
    // The parent is unreachable; the sibling (node 3) knows the verdict.
    EXPECT_EQ(world_.tm(2).ResolveInDoubt(in_doubt[0]), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a2_->GetCell(tx, 0).value(), 2);  // commit took effect
      return Status::kOk;
    });
  });
}

TEST_F(CooperativeTerminationTest, StillBlockedWhenNobodyKnows) {
  // Lose the commit datagrams to BOTH participants: both are in doubt, the
  // coordinator crashes — cooperative termination cannot invent a verdict.
  int commits_lost = 0;
  world_.network().SetDatagramLoss([&](NodeId from, NodeId to) {
    if (from == 1 && to != 1) {
      // Datagrams 1->2: prepare, commit; 1->3: prepare, commit. Count per
      // destination: drop the second to each.
      static std::map<NodeId, int> per_dest;
      if (++per_dest[to] == 2) {
        ++commits_lost;
        return true;
      }
    }
    return false;
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      a1_->SetCell(tx, 0, 1);
      a2_->SetCell(tx, 0, 2);
      a3_->SetCell(tx, 0, 3);
      return Status::kOk;
    });
  });
  world_.network().SetDatagramLoss({});
  EXPECT_EQ(commits_lost, 2);

  world_.RunApp(3, [&](Application& app) {
    world_.CrashNode(1);
    auto in_doubt = world_.tm(2).InDoubt();
    ASSERT_EQ(in_doubt.size(), 1u);
    // Neither the parent (down) nor the sibling (in doubt too) can answer.
    EXPECT_EQ(world_.tm(2).ResolveInDoubt(in_doubt[0]), Status::kNodeDown);
    // The data stays locked — correctly: the verdict is genuinely unknown.
    TransactionId probe = app.Begin();
    EXPECT_EQ(a2_->SetCell(app.MakeTx(probe), 0, 99), Status::kTimeout);
    app.Abort(probe);
    // Once the coordinator recovers, the authoritative answer flows.
    world_.RecoverNode(1);
    EXPECT_EQ(world_.tm(2).ResolveInDoubt(in_doubt[0]), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a2_->GetCell(tx, 0).value(), 2);
      return Status::kOk;
    });
  });
}

TEST_F(CooperativeTerminationTest, SiblingSuppliesAbortVerdict) {
  // The coordinator aborts (a participant votes no via crash); the abort
  // datagram reaches node 3 but not node 2; coordinator dies; node 2 learns
  // "aborted" from node 3.
  int count_1_2 = 0;
  world_.network().SetDatagramLoss([&](NodeId from, NodeId to) {
    if (from == 1 && to == 2) {
      ++count_1_2;
      return count_1_2 == 2;  // lose node 2's verdict datagram
    }
    return false;
  });
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    a1_->SetCell(tx, 0, 1);
    a2_->SetCell(tx, 0, 2);
    a3_->SetCell(tx, 0, 3);
    app.Abort(t);
  });
  world_.network().SetDatagramLoss({});

  world_.RunApp(3, [&](Application& app) {
    world_.CrashNode(1);
    // Node 2 never heard the abort: it still carries the transaction. (It
    // was not prepared — aborts flow outside 2PC — so it shows up as live
    // state that the sibling's knowledge clears.)
    for (const TransactionId& t : world_.tm(2).InDoubt()) {
      world_.tm(2).ResolveInDoubt(t);
    }
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a2_->GetCell(tx, 0).value(), 0);  // the abort stands
      return Status::kOk;
    });
  });
}

}  // namespace
}  // namespace tabs
