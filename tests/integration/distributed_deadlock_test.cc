// Cross-node deadlock: two distributed transactions lock resources on
// different nodes in opposite orders. TABS' own policy (timeouts) breaks the
// cycle eventually; the global waits-for-graph detector breaks it promptly
// and sacrifices only the youngest member (the R*/Obermarck extension the
// paper cites in Section 2.1.2).

#include <gtest/gtest.h>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;

class DistributedDeadlockTest : public ::testing::Test {
 protected:
  DistributedDeadlockTest() : world_(2) {
    a_ = world_.AddServerOf<ArrayServer>(1, "a", 8u);
    b_ = world_.AddServerOf<ArrayServer>(2, "b", 8u);
  }

  // Spawns the two opposite-order transactions; reports each one's final
  // commit status. `first_then_second(app, X, Y)` writes X's cell then Y's.
  void SpawnOpposingPair(Status* s1, Status* s2) {
    world_.SpawnApp(1, "t1", [this, s1](Application& app) {
      *s1 = app.Transaction([&](const server::Tx& tx) {
        Status s = a_->SetCell(tx, 0, 1);
        if (s != Status::kOk) {
          return s;
        }
        world_.scheduler().Charge(10'000);
        world_.scheduler().Yield();  // let t2 take its first lock
        return b_->SetCell(tx, 0, 1);
      });
    });
    world_.SpawnApp(2, "t2", [this, s2](Application& app) {
      *s2 = app.Transaction([&](const server::Tx& tx) {
        Status s = b_->SetCell(tx, 0, 2);
        if (s != Status::kOk) {
          return s;
        }
        world_.scheduler().Charge(10'000);
        world_.scheduler().Yield();
        return a_->SetCell(tx, 0, 2);
      });
    }, 1'000);
  }

  World world_;
  ArrayServer* a_;
  ArrayServer* b_;
};

TEST_F(DistributedDeadlockTest, TimeoutsBreakTheCycleEventually) {
  Status s1 = Status::kInternal;
  Status s2 = Status::kInternal;
  SpawnOpposingPair(&s1, &s2);
  EXPECT_EQ(world_.Drain(), 0);
  // At least one victim; they cannot both commit (that would need both locks
  // in both orders), and at least one aborts by timeout.
  EXPECT_FALSE(s1 == Status::kOk && s2 == Status::kOk);
  EXPECT_TRUE(s1 == Status::kTimeout || s2 == Status::kTimeout);
}

TEST_F(DistributedDeadlockTest, GlobalDetectorFindsCrossNodeCycle) {
  Status s1 = Status::kInternal;
  Status s2 = Status::kInternal;
  SpawnOpposingPair(&s1, &s2);
  TransactionId victim{};
  world_.SpawnApp(1, "detector", [&](Application&) {
    auto detector = world_.GlobalDeadlockDetector();
    auto cycle = detector.FindCycle();
    EXPECT_EQ(cycle.size(), 2u);  // T1 -> T2 -> T1 across the two nodes
    auto chosen = detector.BreakOneCycle();
    ASSERT_TRUE(chosen.has_value());
    victim = *chosen;
  }, 500'000);  // well before the 5 s lock timeout
  EXPECT_EQ(world_.Drain(), 0);
  // The sacrificed transaction aborted; the survivor committed.
  EXPECT_TRUE((s1 == Status::kOk) != (s2 == Status::kOk));
  EXPECT_TRUE(s1 == Status::kAborted || s2 == Status::kAborted);
  EXPECT_NE(victim.sequence, 0u);
}

TEST_F(DistributedDeadlockTest, DetectorLeavesNonDeadlockedWaitersAlone) {
  // One transaction simply waits behind another (no cycle): the detector
  // must not kill anyone.
  Status waiter = Status::kInternal;
  world_.SpawnApp(1, "holder", [&](Application& app) {
    TransactionId t = app.Begin();
    a_->SetCell(app.MakeTx(t), 0, 1);
    world_.scheduler().Charge(2'000'000);
    world_.scheduler().Yield();
    app.End(t);
  });
  world_.SpawnApp(1, "waiter", [&](Application& app) {
    waiter = app.Transaction([&](const server::Tx& tx) { return a_->SetCell(tx, 0, 2); });
  }, 1'000);
  world_.SpawnApp(2, "detector", [&](Application&) {
    auto detector = world_.GlobalDeadlockDetector();
    EXPECT_FALSE(detector.BreakOneCycle().has_value());
  }, 500'000);
  EXPECT_EQ(world_.Drain(), 0);
  EXPECT_EQ(waiter, Status::kOk);  // granted once the holder committed
}

}  // namespace
}  // namespace tabs
