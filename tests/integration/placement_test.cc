// Placement and service-handle integration tests.
//
// A logical service spanning N nodes must behave like one server: operations
// route to the shard that owns the key or index, cross-shard transactions
// commit atomically under the unchanged two-phase protocol, and the handle
// heals itself across shard-node crash and recovery. The last test reuses
// the crash-point exploration harness over the *fan-out* windows the
// sharded batches open (comm.async-issue, comm.batch-issue on the
// coordinator; comm.batch-dispatch on the receiving shard): for every
// reached communication fault point, a crash armed there must leave the
// committed prefix intact and conserve the array total after recovery.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/placement/shard_map.h"
#include "src/servers/account_server.h"
#include "src/servers/array_server.h"
#include "src/servers/btree_server.h"
#include "src/tabs/service_handle.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::AccountServer;
using servers::ArrayServer;
using servers::BTreeServer;

// --- shard map unit behaviour ---------------------------------------------------

TEST(ShardMapTest, InterleavedRoutingIsInvertibleAndBalanced) {
  std::vector<name::Binding> bindings;
  for (std::uint32_t s = 0; s < 3; ++s) {
    bindings.push_back({static_cast<NodeId>(s + 1),
                        placement::ShardInstanceName("a", s),
                        {10 + s, s, 3}});
  }
  auto map = placement::ShardMap::FromBindings("a", bindings);
  ASSERT_TRUE(map.ok());
  std::uint64_t per_shard[3] = {0, 0, 0};
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::uint32_t shard = map.value().ShardOfIndex(i);
    std::uint64_t local = map.value().LocalIndex(i);
    EXPECT_EQ(shard, i % 3);
    EXPECT_EQ(local * 3 + shard, i);  // invertible
    ++per_shard[shard];
  }
  EXPECT_EQ(per_shard[0], 34u);
  EXPECT_EQ(per_shard[1], 33u);
  EXPECT_EQ(per_shard[2], 33u);
  // LocalSize partitions the total exactly.
  std::uint64_t sum = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    sum += placement::ShardSlice{s, 3}.LocalSize(100);
  }
  EXPECT_EQ(sum, 100u);
}

TEST(ShardMapTest, RejectsPartialOrInconsistentShardSets) {
  std::vector<name::Binding> two;
  two.push_back({1, "a#0", {10, 0, 3}});
  two.push_back({2, "a#1", {11, 1, 3}});
  EXPECT_FALSE(placement::ShardMap::FromBindings("a", two).ok());  // shard 2 missing

  std::vector<name::Binding> conflicting;
  conflicting.push_back({1, "a#0", {10, 0, 2}});
  conflicting.push_back({2, "a#1", {11, 1, 3}});  // disagrees on the count
  EXPECT_FALSE(placement::ShardMap::FromBindings("a", conflicting).ok());
}

TEST(ShardMapTest, KeyHashIsDeterministic) {
  // FNV-1a, fixed across platforms: the routing of a key must never depend
  // on the standard library's std::hash.
  EXPECT_EQ(placement::ShardMap::HashKey(""), 14695981039346656037ull);
  EXPECT_EQ(placement::ShardMap::HashKey("a"),
            (14695981039346656037ull ^ 'a') * 1099511628211ull);
}

// --- routed operations ----------------------------------------------------------

TEST(PlacementTest, ArrayServiceRoutesEveryIndexToItsShard) {
  World world(3);
  constexpr std::uint64_t kCells = 10;
  auto shards = world.AddShardedServiceOf<ArrayServer>("cells", {1, 2, 3}, 3, kCells);
  ASSERT_EQ(shards.size(), 3u);
  // Interleaved partitioning: 10 cells over 3 shards -> sizes 4, 3, 3.
  EXPECT_EQ(shards[0]->max_cell(), 4u);
  EXPECT_EQ(shards[1]->max_cell(), 3u);
  EXPECT_EQ(shards[2]->max_cell(), 3u);

  world.RunApp(1, [&](Application& app) {
    ArrayService cells = OpenArray(world, "cells");
    Status s = app.Transaction([&](const server::Tx& tx) {
      for (std::uint64_t i = 0; i < kCells; ++i) {
        Status w = cells.Set(tx, i, static_cast<std::int32_t>(i * 10));
        if (w != Status::kOk) {
          return w;
        }
      }
      return Status::kOk;
    });
    ASSERT_EQ(s, Status::kOk);
    EXPECT_EQ(cells.shard_count(), 3u);

    app.Transaction([&](const server::Tx& tx) {
      for (std::uint64_t i = 0; i < kCells; ++i) {
        // Through the handle...
        auto v = cells.Get(tx, i);
        EXPECT_TRUE(v.ok());
        EXPECT_EQ(v.ok() ? v.value() : -1, static_cast<std::int32_t>(i * 10));
        // ...and at the owning shard directly, at the interleaved local slot.
        auto direct = shards[i % 3]->GetCell(tx, static_cast<std::uint32_t>(i / 3));
        EXPECT_TRUE(direct.ok());
        EXPECT_EQ(direct.ok() ? direct.value() : -1, static_cast<std::int32_t>(i * 10));
      }
      return Status::kOk;
    });
  });
}

TEST(PlacementTest, BatchedOpsSpanShardsInArgumentOrder) {
  WorldOptions opt;
  opt.max_outstanding_calls = 4;  // the batches ride the pipelining window
  opt.op_coalesce_batch = 2;
  World world(3, opt);
  constexpr std::uint64_t kCells = 12;
  world.AddShardedServiceOf<ArrayServer>("cells", {1, 2, 3}, 3, kCells);

  world.RunApp(1, [&](Application& app) {
    ArrayService cells = OpenArray(world, "cells");
    Status s = app.Transaction([&](const server::Tx& tx) {
      std::vector<std::pair<std::uint64_t, std::int32_t>> writes;
      for (std::uint64_t i = 0; i < kCells; ++i) {
        writes.push_back({i, static_cast<std::int32_t>(100 + i)});
      }
      return cells.SetMany(tx, writes);
    });
    ASSERT_EQ(s, Status::kOk);

    app.Transaction([&](const server::Tx& tx) {
      // Shuffled read order across all three shards; results must come back
      // in argument order.
      std::vector<std::uint64_t> indices = {11, 0, 7, 3, 5, 10, 1, 8};
      auto got = cells.GetMany(tx, indices);
      EXPECT_TRUE(got.ok());
      if (got.ok()) {
        EXPECT_EQ(got.value().size(), indices.size());
        for (size_t k = 0; k < indices.size(); ++k) {
          EXPECT_EQ(got.value()[k], static_cast<std::int32_t>(100 + indices[k]));
        }
      }
      return Status::kOk;
    });
  });
  EXPECT_GT(world.metrics().async_calls_issued(), 0u);
}

TEST(PlacementTest, BTreeServiceHashesKeysToOwningShard) {
  World world(2);
  auto shards = world.AddShardedServiceOf<BTreeServer>("kv", {1, 2}, 2);
  ASSERT_EQ(shards.size(), 2u);

  std::vector<std::string> keys = {"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"};
  world.RunApp(1, [&](Application& app) {
    BTreeService kv = OpenBTree(world, "kv");
    Status s = app.Transaction([&](const server::Tx& tx) {
      for (const std::string& k : keys) {
        Status w = kv.Insert(tx, k, "v-" + k);
        if (w != Status::kOk) {
          return w;
        }
      }
      return Status::kOk;
    });
    ASSERT_EQ(s, Status::kOk);

    app.Transaction([&](const server::Tx& tx) {
      for (const std::string& k : keys) {
        auto v = kv.Lookup(tx, k);
        EXPECT_TRUE(v.ok()) << k;
        EXPECT_EQ(v.ok() ? v.value() : "", "v-" + k);
        // The key lives on exactly the shard the hash names: present there,
        // absent on the other.
        std::uint32_t owner = placement::ShardMap::HashKey(k) % 2;
        EXPECT_TRUE(shards[owner]->Lookup(tx, k).ok()) << k;
        EXPECT_FALSE(shards[1 - owner]->Lookup(tx, k).ok()) << k;
      }
      return Status::kOk;
    });
  });
}

TEST(PlacementTest, OpeningUnknownServiceFailsNotFound) {
  World world(1);
  world.RunApp(1, [&](Application& app) {
    AccountService ghost = OpenAccounts(world, "no-such-service");
    Status s = app.Transaction(
        [&](const server::Tx& tx) { return ghost.Deposit(tx, 0, 1); });
    EXPECT_EQ(s, Status::kNotFound);
  });
}

// --- cross-shard transactions ---------------------------------------------------

TEST(PlacementTest, CrossShardTransferIsAtomic) {
  World world(3);
  constexpr std::uint64_t kAccounts = 6;
  world.AddShardedServiceOf<AccountServer>("accounts", {1, 2, 3}, 3, kAccounts);

  world.RunApp(1, [&](Application& app) {
    AccountService bank = OpenAccounts(world, "accounts");
    ASSERT_EQ(app.Transaction([&](const server::Tx& tx) {
                for (std::uint64_t a = 0; a < kAccounts; ++a) {
                  Status s = bank.Deposit(tx, a, 100);
                  if (s != Status::kOk) {
                    return s;
                  }
                }
                return Status::kOk;
              }),
              Status::kOk);

    // Accounts 1 (shard 1) and 2 (shard 2): debit and credit on different
    // nodes, one transaction.
    ASSERT_EQ(app.Transaction([&](const server::Tx& tx) {
                Status s = bank.Withdraw(tx, 1, 40);
                if (s != Status::kOk) {
                  return s;
                }
                return bank.Deposit(tx, 2, 40);
              }),
              Status::kOk);

    // A doomed cross-shard transaction leaves no trace on either shard.
    TxnScope doomed(app);
    bank.Withdraw(doomed.tx(), 1, 25);
    bank.Deposit(doomed.tx(), 2, 25);
    doomed.Abort();

    app.Transaction([&](const server::Tx& tx) {
      auto b1 = bank.Balance(tx, 1);
      auto b2 = bank.Balance(tx, 2);
      EXPECT_TRUE(b1.ok() && b2.ok());
      EXPECT_EQ(b1.value(), 60);
      EXPECT_EQ(b2.value(), 140);
      return Status::kOk;
    });
  });
}

TEST(PlacementTest, HandleHealsAcrossShardCrashAndRecovery) {
  World world(3);
  constexpr std::uint64_t kAccounts = 6;
  world.AddShardedServiceOf<AccountServer>("accounts", {1, 2, 3}, 3, kAccounts);

  world.RunApp(1, [&](Application& app) {
    AccountService bank = OpenAccounts(world, "accounts");
    ASSERT_EQ(app.Transaction([&](const server::Tx& tx) {
                for (std::uint64_t a = 0; a < kAccounts; ++a) {
                  Status s = bank.Deposit(tx, a, 100);
                  if (s != Status::kOk) {
                    return s;
                  }
                }
                return Status::kOk;
              }),
              Status::kOk);

    // Shard 1 (node 2) dies. Operations on its accounts fail kNodeDown —
    // the handle's fresh re-resolution comes back incomplete — while other
    // shards keep serving.
    world.CrashNode(2);
    EXPECT_EQ(app.Transaction([&](const server::Tx& tx) { return bank.Withdraw(tx, 1, 10); }),
              Status::kNodeDown);
    EXPECT_EQ(app.Transaction([&](const server::Tx& tx) { return bank.Withdraw(tx, 0, 10); }),
              Status::kOk);

    // Recovery re-registers the shard's binding; the *same* handle heals on
    // the next operation and the shard's committed state is intact.
    world.RecoverNode(2);
    EXPECT_EQ(app.Transaction([&](const server::Tx& tx) { return bank.Withdraw(tx, 1, 10); }),
              Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      auto b = bank.Balance(tx, 1);
      EXPECT_TRUE(b.ok());
      EXPECT_EQ(b.value(), 90);
      return Status::kOk;
    });
  });
}

// --- crash-point exploration over the shard fan-out windows ---------------------

constexpr std::uint64_t kCells = 6;  // 2 shards (nodes 1, 2), 3 cells each
constexpr std::int32_t kSeedValue = 100;

// cell -> absolute value. The workload stages absolute values, so folding a
// transaction into the model overwrites rather than adds.
using Cells = std::map<std::uint64_t, std::int32_t>;

struct Model {
  Cells committed;
  Cells inflight;  // the transaction whose EndTransaction the crash caught
  bool end_in_progress = false;
};

void Overwrite(Cells& into, const Cells& writes) {
  for (const auto& [cell, value] : writes) {
    into[cell] = value;
  }
}

WorldOptions FanOutOptions() {
  WorldOptions opt;
  opt.group_commit_window_us = 50;
  opt.vote_timeout_us = 2'000'000;
  // Pipelining on, so several batch chunks are in flight per fan-out and the
  // comm.* windows are genuinely open when the crash fires.
  opt.max_outstanding_calls = 4;
  opt.op_coalesce_batch = 2;
  return opt;
}

// The deterministic sharded workload: a driver on node 3 runs read-modify-
// write transfers through the handle; every GetMany/SetMany fans out to both
// shards. May be killed at any armed fault point.
void RunShardedWorkload(World& world, unsigned seed, Model& m) {
  world.RunApp(3, [&world, seed, &m](Application& app) {
    ArrayService cells = OpenArray(world, "cells");
    std::mt19937 rng(seed);

    auto transact = [&](const std::function<Status(const server::Tx&, Cells&)>& body,
                        bool doom) {
      Cells staged;
      TransactionId tid = app.Begin();
      Status s = body(app.MakeTx(tid), staged);
      if (doom || s != Status::kOk) {
        app.Abort(tid);
        return;
      }
      m.inflight = staged;
      m.end_in_progress = true;
      Status end = app.End(tid);
      m.end_in_progress = false;
      m.inflight.clear();
      if (end == Status::kOk) {
        Overwrite(m.committed, staged);
      }
    };

    // Seed all cells in one cross-shard batch.
    transact(
        [&](const server::Tx& tx, Cells& staged) {
          std::vector<std::pair<std::uint64_t, std::int32_t>> writes;
          for (std::uint64_t i = 0; i < kCells; ++i) {
            writes.push_back({i, kSeedValue});
          }
          Status s = cells.SetMany(tx, writes);
          if (s == Status::kOk) {
            for (const auto& [cell, value] : writes) {
              staged[cell] = value;
            }
          }
          return s;
        },
        /*doom=*/false);

    for (int i = 0; i < 8; ++i) {
      std::uint64_t a = rng() % kCells;
      std::uint64_t b = rng() % kCells;
      if (b == a) {
        b = (b + 1) % kCells;
      }
      auto amount = static_cast<std::int32_t>(1 + rng() % 20);
      bool doom = (rng() % 4) == 0;
      transact(
          [&](const server::Tx& tx, Cells& staged) {
            auto values = cells.GetMany(tx, {a, b});
            if (!values.ok()) {
              return values.status();
            }
            Status s = cells.SetMany(tx, {{a, values.value()[0] - amount},
                                          {b, values.value()[1] + amount}});
            if (s == Status::kOk) {
              staged[a] = values.value()[0] - amount;
              staged[b] = values.value()[1] + amount;
            }
            return s;
          },
          doom);
      if (i == 4) {
        // One single-op async probe per run: the AsyncRemoteCall issue
        // window (comm.async-issue) is part of the explored surface too.
        transact(
            [&](const server::Tx& tx, Cells&) {
              auto* shard0 =
                  world.Server<ArrayServer>(1, placement::ShardInstanceName("cells", 0));
              if (shard0 == nullptr) {
                return Status::kNodeDown;
              }
              auto f = shard0->AsyncGetCell(tx, 0);
              if (!f->Await(comm::Network::kDefaultSessionTimeout)) {
                return Status::kTimeout;
              }
              return f->value().ok() ? Status::kOk : f->value().status();
            },
            /*doom=*/false);
      }
    }
  });
}

void Recover(World& world) {
  NodeId runner = 0;
  for (NodeId n = 1; n <= 3; ++n) {
    if (world.NodeAlive(n)) {
      runner = n;
      break;
    }
  }
  ASSERT_NE(runner, 0u);
  world.RunApp(runner, [&world](Application&) {
    for (NodeId n = 1; n <= 3; ++n) {
      if (!world.NodeAlive(n)) {
        world.RecoverNode(n);
      }
    }
    for (int pass = 0; pass < 2; ++pass) {
      for (NodeId n = 1; n <= 3; ++n) {
        for (const TransactionId& tid : world.tm(n).InDoubt()) {
          world.tm(n).ResolveInDoubt(tid);
        }
      }
    }
  });
}

Cells ReadCells(World& world) {
  Cells out;
  world.RunApp(3, [&](Application& app) {
    ArrayService cells = OpenArray(world, "cells");
    app.Transaction([&](const server::Tx& tx) {
      std::vector<std::uint64_t> all;
      for (std::uint64_t i = 0; i < kCells; ++i) {
        all.push_back(i);
      }
      auto got = cells.GetMany(tx, all);
      EXPECT_TRUE(got.ok());
      if (got.ok()) {
        for (std::uint64_t i = 0; i < kCells; ++i) {
          out[i] = got.value()[i];
        }
      }
      return Status::kOk;
    });
  });
  return out;
}

std::int64_t Total(const Cells& c) {
  std::int64_t t = 0;
  for (const auto& [cell, v] : c) {
    t += v;
  }
  return t;
}

std::string Describe(const Cells& c) {
  std::string s;
  for (const auto& [cell, v] : c) {
    s += std::to_string(cell) + "=" + std::to_string(v) + " ";
  }
  return s.empty() ? "(empty)" : s;
}

void CheckInvariants(World& world, const Model& m, unsigned seed, const std::string& where) {
  for (NodeId n = 1; n <= 3; ++n) {
    EXPECT_TRUE(world.tm(n).InDoubt().empty())
        << "unresolved in-doubt transactions on node " << n << " after crash at " << where
        << " (seed " << seed << ")";
  }
  Cells got = ReadCells(world);
  Cells want_committed = m.committed;
  for (std::uint64_t i = 0; i < kCells; ++i) {
    want_committed.try_emplace(i, 0);
  }
  Cells want_with_inflight = want_committed;
  Overwrite(want_with_inflight, m.inflight);

  bool matches =
      got == want_committed || (m.end_in_progress && got == want_with_inflight);
  EXPECT_TRUE(matches) << "committed prefix violated after crash at " << where << " (seed "
                       << seed << ")\n  got:               " << Describe(got)
                       << "\n  committed model:   " << Describe(want_committed)
                       << "\n  model + in-flight: " << Describe(want_with_inflight);
  std::int64_t total = Total(got);
  EXPECT_TRUE(total == Total(want_committed) ||
              (m.end_in_progress && total == Total(want_with_inflight)))
      << "cell total not conserved after crash at " << where << ": " << total;
}

class ShardFanOutCrashTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShardFanOutCrashTest, CommFaultPointsRecoverConsistently) {
  const unsigned seed = GetParam();

  // Pass 1: record which fault points the sharded fan-out reaches.
  std::vector<sim::FaultInjector::PointHit> hits;
  {
    World world(3, FanOutOptions());
    world.AddShardedServiceOf<ArrayServer>("cells", {1, 2}, 2, kCells);
    world.faults().StartRecording();
    Model m;
    RunShardedWorkload(world, seed, m);
    EXPECT_FALSE(world.faults().crash_fired());
    hits = world.faults().recorded_hits();
    std::set<std::string> distinct(world.faults().distinct_points().begin(),
                                   world.faults().distinct_points().end());
    // The new communication windows must be part of the reached surface.
    EXPECT_TRUE(distinct.count("comm.batch-issue")) << "batch issue window not reached";
    EXPECT_TRUE(distinct.count("comm.batch-dispatch")) << "batch dispatch window not reached";
    EXPECT_TRUE(distinct.count("comm.async-issue")) << "async issue window not reached";
    CheckInvariants(world, m, seed, "no-fault");
    ASSERT_FALSE(::testing::Test::HasFailure()) << "fault-free run is already inconsistent";
  }

  // Crash plan: the communication points only (the rest of the surface is
  // explored by crash_point_exploration_test); first hit plus a mid-run hit.
  std::map<std::string, int> counts;
  for (const auto& h : hits) {
    if (h.point.rfind("comm.", 0) == 0) {
      counts[h.point] = std::max(counts[h.point], h.hit);
    }
  }
  ASSERT_FALSE(counts.empty());
  std::vector<std::pair<std::string, int>> plan;
  for (const auto& [point, count] : counts) {
    plan.emplace_back(point, 1);
    if (count > 2) {
      plan.emplace_back(point, count / 2 + 1);
    }
  }

  // Pass 2: one fresh deterministic universe per planned crash.
  for (const auto& [point, hit] : plan) {
    World world(3, FanOutOptions());
    world.AddShardedServiceOf<ArrayServer>("cells", {1, 2}, 2, kCells);
    world.faults().ArmCrash(point, hit);
    Model m;
    RunShardedWorkload(world, seed, m);
    EXPECT_TRUE(world.faults().crash_fired())
        << point << " hit " << hit << " never fired (seed " << seed
        << "): determinism broken between passes";
    world.faults().Disarm();
    Recover(world);
    CheckInvariants(world, m, seed, point + "#" + std::to_string(hit));
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "[fault-repro] seed=%u point=%s hit=%d\n", seed, point.c_str(),
                   hit);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardFanOutCrashTest, ::testing::Values(1u, 2u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });
}  // namespace
}  // namespace tabs
