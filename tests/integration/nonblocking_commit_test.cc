// Non-blocking commit (Paxos Commit, Gray & Lamport): the window the paper
// concedes — a coordinator that dies after collecting votes but before any
// commit datagram lands leaves EVERY participant in doubt, and cooperative
// termination cannot help because no sibling knows the verdict either.
// Under WorldOptions::commit_mode = kPaxosCommit the decision lives at 2F+1
// acceptors, so the survivors drive it to a conclusion without coordinator
// recovery. These tests pin both halves: plain 2PC stays blocked until the
// coordinator returns; Paxos Commit resolves within acceptor round-trips.

#include <gtest/gtest.h>

#include <string>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::ArrayServer;
using txn::CommitMode;

WorldOptions PaxosOptions() {
  WorldOptions opt;
  opt.commit_mode = CommitMode::kPaxosCommit;
  opt.paxos_f = 1;  // 3 acceptors, quorum 2
  return opt;
}

// --- sanity: the mode commits and aborts like 2PC when nothing fails --------

TEST(PaxosCommitTest, DistributedWriteCommitsAndAbortUndoes) {
  World world(3, PaxosOptions());
  auto* a1 = world.AddServerOf<ArrayServer>(1, "a1", 4u);
  auto* a2 = world.AddServerOf<ArrayServer>(2, "a2", 4u);
  auto* a3 = world.AddServerOf<ArrayServer>(3, "a3", 4u);

  world.RunApp(1, [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      a1->SetCell(tx, 0, 1);
      a2->SetCell(tx, 0, 2);
      a3->SetCell(tx, 0, 3);
      return Status::kOk;
    });
    EXPECT_EQ(s, Status::kOk);

    // An explicit abort unwinds across all participants.
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    a2->SetCell(tx, 1, 42);
    a3->SetCell(tx, 1, 43);
    app.Abort(t);

    app.Transaction([&](const server::Tx& tx2) {
      EXPECT_EQ(a1->GetCell(tx2, 0).value(), 1);
      EXPECT_EQ(a2->GetCell(tx2, 0).value(), 2);
      EXPECT_EQ(a3->GetCell(tx2, 0).value(), 3);
      EXPECT_EQ(a2->GetCell(tx2, 1).value(), 0);
      EXPECT_EQ(a3->GetCell(tx2, 1).value(), 0);
      return Status::kOk;
    });
  });
}

TEST(PaxosCommitTest, ReadOnlyParticipantsDropOutOfPhaseTwo) {
  World world(3, PaxosOptions());
  auto* a1 = world.AddServerOf<ArrayServer>(1, "a1", 4u);
  auto* a2 = world.AddServerOf<ArrayServer>(2, "a2", 4u);
  auto* a3 = world.AddServerOf<ArrayServer>(3, "a3", 4u);

  world.RunApp(1, [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      a1->SetCell(tx, 0, 7);
      a2->GetCell(tx, 0);  // reads only: votes ReadOnly through its instance
      a3->GetCell(tx, 0);
      return Status::kOk;
    });
    EXPECT_EQ(s, Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1->GetCell(tx, 0).value(), 7);
      return Status::kOk;
    });
  });
  // Nothing lingers in doubt anywhere.
  for (NodeId n = 1; n <= 3; ++n) {
    EXPECT_TRUE(world.tm(n).InDoubt().empty()) << "node " << n;
  }
}

// --- the paper's blocking window, both ways ----------------------------------

// Commits a three-node write transaction from node 1 while every commit
// datagram out of the coordinator is lost, so BOTH participants end up
// prepared and in doubt with no sibling knowing the verdict. Under Paxos
// Commit the learn datagrams are lost too, forcing a genuine takeover (the
// surviving acceptors hold only ballot-0 acceptances, not the outcome).
template <typename WorldT>
void CommitWithVerdictsLost(WorldT& world, ArrayServer* a1, ArrayServer* a2,
                            ArrayServer* a3) {
  world.network().SetDatagramLossTagged(
      [](NodeId from, NodeId, const std::string& what) {
        return from == 1 && (what == "2pc-commit" || what == "paxos-learn");
      });
  Status outcome = Status::kInternal;
  world.RunApp(1, [&](Application& app) {
    outcome = app.Transaction([&](const server::Tx& tx) {
      a1->SetCell(tx, 0, 1);
      a2->SetCell(tx, 0, 2);
      a3->SetCell(tx, 0, 3);
      return Status::kOk;
    });
  });
  ASSERT_EQ(outcome, Status::kOk);  // the coordinator decided commit
  world.network().SetDatagramLossTagged({});
  ASSERT_EQ(world.tm(2).InDoubt().size(), 1u);
  ASSERT_EQ(world.tm(3).InDoubt().size(), 1u);
}

TEST(NonBlockingCommitTest, TwoPhaseBlocksUntilCoordinatorRecovery) {
  WorldOptions opt;
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // the 2PC control leg
  World world(3, opt);
  auto* a1 = world.AddServerOf<ArrayServer>(1, "a1", 4u);
  auto* a2 = world.AddServerOf<ArrayServer>(2, "a2", 4u);
  auto* a3 = world.AddServerOf<ArrayServer>(3, "a3", 4u);
  CommitWithVerdictsLost(world, a1, a2, a3);

  world.RunApp(3, [&](Application& app) {
    world.CrashNode(1);
    auto in_doubt = world.tm(2).InDoubt();
    ASSERT_EQ(in_doubt.size(), 1u);
    // The parent is dead and the only sibling is in doubt too: blocked —
    // this is exactly the deficiency the paper concedes for 2PC.
    EXPECT_EQ(world.tm(2).ResolveInDoubt(in_doubt[0]), Status::kNodeDown);
    TransactionId probe = app.Begin();
    EXPECT_EQ(a2->SetCell(app.MakeTx(probe), 0, 99), Status::kTimeout);
    app.Abort(probe);
    // Only coordinator recovery unblocks it.
    world.RecoverNode(1);
    EXPECT_EQ(world.tm(2).ResolveInDoubt(in_doubt[0]), Status::kOk);
  });
}

TEST(NonBlockingCommitTest, PaxosResolvesAllInDoubtWithoutCoordinator) {
  World world(3, PaxosOptions());
  auto* a1 = world.AddServerOf<ArrayServer>(1, "a1", 4u);
  auto* a2 = world.AddServerOf<ArrayServer>(2, "a2", 4u);
  auto* a3 = world.AddServerOf<ArrayServer>(3, "a3", 4u);
  CommitWithVerdictsLost(world, a1, a2, a3);

  // Crash the coordinator. Node 2's transaction is resolved explicitly so
  // the takeover's virtual-time cost can be bounded; node 3's is left to the
  // background takeover sweep the crash spawns on every survivor.
  SimTime elapsed = 0;
  world.RunApp(3, [&](Application&) {
    world.CrashNode(1);
    auto in_doubt = world.tm(2).InDoubt();
    ASSERT_EQ(in_doubt.size(), 1u);
    SimTime before = world.scheduler().Now();
    EXPECT_EQ(world.tm(2).ResolveInDoubt(in_doubt[0]), Status::kOk);
    elapsed = world.scheduler().Now() - before;
  });

  EXPECT_TRUE(world.tm(2).InDoubt().empty());
  EXPECT_TRUE(world.tm(3).InDoubt().empty());  // the sweep alone got this one
  // Resolution is acceptor round-trips, log forces and (under takeover
  // contention) a bounded backoff — never a wait on the 10 s vote budget.
  // The measurement is inflated by the fresh task's clock joining the node's
  // I/O frontier from the earlier commit, so the bound is coarse on purpose:
  // a regression that burns even one vote timeout lands far above it.
  EXPECT_LT(elapsed, world.tm(2).vote_timeout() / 2);

  // The commit decided at the acceptors took effect; locks are released.
  world.RunApp(3, [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a2->GetCell(tx, 0).value(), 2);
      EXPECT_EQ(a3->GetCell(tx, 0).value(), 3);
      return a3->SetCell(tx, 1, 9);  // previously-locked data writable again
    });
    EXPECT_EQ(s, Status::kOk);
  });
}

// --- the vote_timeout_us interaction (flip point) -----------------------------
//
// Every acceptor acknowledgement back to the coordinator is lost, so ballot 0
// never completes at the leader even though the acceptors durably accepted
// every Prepared vote. A 2PC coordinator in this spot presumes abort — but
// for Paxos Commit that presumption is UNSOUND: an instance may already hold
// a quorum, meaning the transaction is committed at the acceptors. The
// coordinator must route its timeout through the acceptor read path (phase
// 1) and discover the truth.

TEST(PaxosVoteTimeoutTest, LostAcceptRepliesFlipTimeoutToCommit) {
  World world(3, PaxosOptions());  // default 10 s vote budget: all virtual time
  auto* a1 = world.AddServerOf<ArrayServer>(1, "a1", 4u);
  auto* a2 = world.AddServerOf<ArrayServer>(2, "a2", 4u);
  auto* a3 = world.AddServerOf<ArrayServer>(3, "a3", 4u);
  world.network().SetDatagramLossTagged(
      [](NodeId, NodeId, const std::string& what) { return what == "paxos-accepted"; });

  Status outcome = Status::kInternal;
  world.RunApp(1, [&](Application& app) {
    outcome = app.Transaction([&](const server::Tx& tx) {
      a1->SetCell(tx, 0, 1);
      a2->SetCell(tx, 0, 2);
      a3->SetCell(tx, 0, 3);
      return Status::kOk;
    });
  });
  // The flip point: the votes were all Prepared and durably accepted, so the
  // read path finds them and the transaction COMMITS despite the timeout.
  EXPECT_EQ(outcome, Status::kOk);
  world.network().SetDatagramLossTagged({});

  world.RunApp(2, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a1->GetCell(tx, 0).value(), 1);
      EXPECT_EQ(a2->GetCell(tx, 0).value(), 2);
      EXPECT_EQ(a3->GetCell(tx, 0).value(), 3);
      return Status::kOk;
    });
  });
  for (NodeId n = 1; n <= 3; ++n) {
    EXPECT_TRUE(world.tm(n).InDoubt().empty()) << "node " << n;
  }
}

TEST(PaxosVoteTimeoutTest, TwoPhaseControlPresumesAbortOnTheSameLoss) {
  // The control: plain 2PC under the equivalent loss (every vote datagram
  // back to the coordinator) presumes abort, as it must — its verdict lives
  // nowhere else. This is the asymmetry the flip-point test above pins.
  WorldOptions opt;
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // the 2PC control leg
  World world(3, opt);
  auto* a1 = world.AddServerOf<ArrayServer>(1, "a1", 4u);
  auto* a2 = world.AddServerOf<ArrayServer>(2, "a2", 4u);
  auto* a3 = world.AddServerOf<ArrayServer>(3, "a3", 4u);
  world.network().SetDatagramLossTagged(
      [](NodeId, NodeId to, const std::string& what) { return to == 1 && what == "2pc-vote"; });

  Status outcome = Status::kInternal;
  world.RunApp(1, [&](Application& app) {
    outcome = app.Transaction([&](const server::Tx& tx) {
      a1->SetCell(tx, 0, 1);
      a2->SetCell(tx, 0, 2);
      a3->SetCell(tx, 0, 3);
      return Status::kOk;
    });
  });
  EXPECT_EQ(outcome, Status::kVoteNo);
  world.network().SetDatagramLossTagged({});

  world.RunApp(2, [&](Application& app) {
    // Participants resolve to abort through the (live) coordinator.
    for (const TransactionId& t : world.tm(2).InDoubt()) {
      world.tm(2).ResolveInDoubt(t);
    }
    for (const TransactionId& t : world.tm(3).InDoubt()) {
      world.tm(3).ResolveInDoubt(t);
    }
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(a2->GetCell(tx, 0).value(), 0);  // the abort stands
      EXPECT_EQ(a3->GetCell(tx, 0).value(), 0);
      return Status::kOk;
    });
  });
}

}  // namespace
}  // namespace tabs
