// Network and Communication Manager tests: session semantics, datagram
// loss, broadcast, partitions, spanning-tree construction.

#include "src/comm/comm_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/comm/network.h"

namespace tabs::comm {
namespace {

using sim::CostModel;
using sim::Primitive;

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : substrate_(sched_, CostModel::Baseline(), sim::ArchitectureModel::Prototype()),
        net_(substrate_) {
    net_.AddNode(1);
    net_.AddNode(2);
    net_.AddNode(3);
  }

  sim::Scheduler sched_;
  sim::Substrate substrate_;
  Network net_;
};

TEST_F(NetworkTest, SessionCallReturnsHandlerValueWithLatency) {
  int got = 0;
  SimTime elapsed = 0;
  sched_.Spawn("caller", 1, 0, [&] {
    SimTime t0 = sched_.Now();
    auto r = net_.SessionCall<int>(1, 2, "f", [] { return 42; });
    elapsed = sched_.Now() - t0;
    ASSERT_TRUE(r.ok());
    got = r.value();
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(got, 42);
  EXPECT_EQ(elapsed, CostModel::Baseline().Of(Primitive::kInterNodeDataServerCall));
}

TEST_F(NetworkTest, SessionHandlerTimeAddsToCallerLatency) {
  SimTime elapsed = 0;
  sched_.Spawn("caller", 1, 0, [&] {
    SimTime t0 = sched_.Now();
    net_.SessionCall<int>(1, 2, "slow", [&] {
      sched_.Charge(500'000);  // 500 ms of remote work
      return 1;
    });
    elapsed = sched_.Now() - t0;
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(elapsed, 89'000 + 500'000);
}

TEST_F(NetworkTest, SessionToDeadNodeFailsFast) {
  net_.SetAlive(2, false);
  Status status = Status::kOk;
  sched_.Spawn("caller", 1, 0, [&] {
    auto r = net_.SessionCall<int>(1, 2, "f", [] { return 1; });
    status = r.status();
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(status, Status::kNodeDown);
}

TEST_F(NetworkTest, SessionDetectsCrashMidCall) {
  Status status = Status::kOk;
  sched_.Spawn("caller", 1, 0, [&] {
    auto r = net_.SessionCall<int>(1, 2, "f", [&]() -> int {
      net_.SetAlive(2, false);  // the destination dies while handling
      sched_.KillWhere([](const sim::Task& t) { return t.node == 2; });
      return 1;  // unreachable
    });
    status = r.status();
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(status, Status::kNodeDown);  // session timeout detected the crash
}

TEST_F(NetworkTest, DatagramDeliveredOneWay) {
  bool delivered = false;
  SimTime sender_after = -1;
  SimTime receiver_at = -1;
  sched_.Spawn("sender", 1, 0, [&] {
    net_.SendDatagram(1, 2, "d", [&] {
      delivered = true;
      receiver_at = sched_.Now();
    });
    sender_after = sched_.Now();
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(sender_after, 0);          // fire and forget
  EXPECT_EQ(receiver_at, 25'000);      // one datagram time later
}

TEST_F(NetworkTest, DatagramLossFilterDrops) {
  net_.SetDatagramLoss([](NodeId from, NodeId to) { return to == 2; });
  int delivered = 0;
  sched_.Spawn("sender", 1, 0, [&] {
    net_.SendDatagram(1, 2, "lost", [&] { ++delivered; });
    net_.SendDatagram(1, 3, "ok", [&] { ++delivered; });
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, BroadcastReachesAllLiveNodes) {
  std::set<NodeId> reached;
  net_.SetAlive(3, false);
  sched_.Spawn("sender", 1, 0, [&] {
    net_.Broadcast(1, "b", [&](NodeId n) { reached.insert(n); });
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(reached, (std::set<NodeId>{2}));  // not self, not dead node 3
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  net_.SetPartitioned(1, 2, true);
  EXPECT_FALSE(net_.Reachable(1, 2));
  EXPECT_FALSE(net_.Reachable(2, 1));
  EXPECT_TRUE(net_.Reachable(1, 3));
  net_.SetPartitioned(1, 2, false);
  EXPECT_TRUE(net_.Reachable(1, 2));
}

TEST_F(NetworkTest, CommManagerBuildsSpanningTreeBothEnds) {
  CommManager cm1(1, net_);
  CommManager cm2(2, net_);
  CommManager cm3(3, net_);
  TransactionId tid{1, 7};
  sched_.Spawn("app", 1, 0, [&] {
    cm1.RemoteCall<int>(tid, cm2, "op", [&] {
      // Nested call: node 2 calls node 3 on behalf of the same transaction.
      cm2.RemoteCall<int>(tid, cm3, "nested", [] { return 0; });
      return 0;
    });
  });
  EXPECT_EQ(sched_.Run(), 0);
  auto info1 = cm1.InfoFor(tid);
  EXPECT_EQ(info1.parent, kInvalidNode);  // rooted at node 1
  EXPECT_EQ(info1.children, (std::set<NodeId>{2}));
  auto info2 = cm2.InfoFor(tid);
  EXPECT_EQ(info2.parent, 1u);
  EXPECT_EQ(info2.children, (std::set<NodeId>{3}));
  auto info3 = cm3.InfoFor(tid);
  EXPECT_EQ(info3.parent, 2u);
  EXPECT_TRUE(info3.children.empty());
}

TEST_F(NetworkTest, ParentIsFirstContactOnly) {
  // "A node A is a parent of node B iff A was the first node to invoke an
  // operation on behalf of the transaction on B."
  CommManager cm1(1, net_);
  CommManager cm2(2, net_);
  CommManager cm3(3, net_);
  TransactionId tid{1, 9};
  sched_.Spawn("app", 1, 0, [&] {
    cm1.RemoteCall<int>(tid, cm3, "first", [] { return 0; });
    cm1.RemoteCall<int>(tid, cm2, "via2", [&] {
      cm2.RemoteCall<int>(tid, cm3, "second-contact", [] { return 0; });
      return 0;
    });
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(cm3.InfoFor(tid).parent, 1u);  // node 2's later contact doesn't re-parent
}

TEST_F(NetworkTest, SessionLossSurfacesAsNodeDownAndIsCounted) {
  net_.SetSessionLoss([](NodeId from, NodeId to) { return from == 1 && to == 2; });
  Status dropped = Status::kOk;
  Status other_direction = Status::kNodeDown;
  sched_.Spawn("caller", 1, 0, [&] {
    dropped = net_.SessionCall<int>(1, 2, "f", [] { return 1; }).status();
    other_direction = net_.SessionCall<int>(1, 3, "g", [] { return 1; }).status();
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(dropped, Status::kNodeDown);
  EXPECT_EQ(other_direction, Status::kOk);  // the filter is per-pair
  EXPECT_EQ(substrate_.metrics().faults_injected(sim::FaultKind::kSessionDrop), 1);

  net_.SetSessionLoss({});
  Status after_clear = Status::kNodeDown;
  sched_.Spawn("caller2", 1, 0, [&] {
    after_clear = net_.SessionCall<int>(1, 2, "f", [] { return 1; }).status();
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(after_clear, Status::kOk);
}

TEST_F(NetworkTest, DatagramDuplicationDeliversHandlerTwice) {
  // duplicate_probability = 1: every datagram arrives twice.
  net_.SetDatagramFaults({/*seed=*/1, /*duplicate_probability=*/1.0,
                          /*jitter_probability=*/0.0, /*max_jitter_us=*/0});
  int deliveries = 0;
  sched_.Spawn("sender", 1, 0,
               [&] { net_.SendDatagram(1, 2, "dup", [&] { ++deliveries; }); });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(substrate_.metrics().faults_injected(sim::FaultKind::kDatagramDuplicate), 1);
}

TEST_F(NetworkTest, DatagramFaultsAreDeterministicPerSeed) {
  auto run = [this](std::uint64_t seed) {
    net_.SetDatagramFaults({seed, /*duplicate_probability=*/0.5,
                            /*jitter_probability=*/0.5, /*max_jitter_us=*/3000});
    std::vector<SimTime> arrivals;
    sched_.Spawn("sender", 1, 0, [&] {
      for (int i = 0; i < 10; ++i) {
        net_.SendDatagram(1, 2, "d", [&] { arrivals.push_back(sched_.Now()); });
      }
    });
    EXPECT_EQ(sched_.Run(), 0);
    return arrivals;
  };
  std::vector<SimTime> first = run(7);
  std::vector<SimTime> replay = run(7);
  EXPECT_EQ(first, replay);  // same seed, same duplicates and jitter
  EXPECT_GT(first.size(), 10u);  // some datagram duplicated
  std::vector<SimTime> other = run(8);
  EXPECT_NE(first, other);  // a different seed perturbs the schedule
}

TEST_F(NetworkTest, JitterCanReorderDatagrams) {
  // Only jitter, always on, large bound: with several sends, some pair
  // arrives out of program order (deterministically, given the seed).
  net_.SetDatagramFaults({/*seed=*/3, /*duplicate_probability=*/0.0,
                          /*jitter_probability=*/0.5, /*max_jitter_us=*/200'000});
  std::vector<int> order;
  sched_.Spawn("sender", 1, 0, [&] {
    for (int i = 0; i < 8; ++i) {
      net_.SendDatagram(1, 2, "d", [&order, i] { order.push_back(i); });
    }
  });
  EXPECT_EQ(sched_.Run(), 0);
  ASSERT_EQ(order.size(), 8u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()))
      << "jitter never reordered anything; weaken the seed or raise the bound";
}

TEST_F(NetworkTest, RemoteCallToPartitionedNodeDoesNotGrowTree) {
  CommManager cm1(1, net_);
  CommManager cm2(2, net_);
  net_.SetPartitioned(1, 2, true);
  TransactionId tid{1, 11};
  Status status = Status::kOk;
  sched_.Spawn("app", 1, 0, [&] {
    auto r = cm1.RemoteCall<int>(tid, cm2, "op", [] { return 0; });
    status = r.status();
  });
  EXPECT_EQ(sched_.Run(), 0);
  EXPECT_EQ(status, Status::kNodeDown);
  EXPECT_TRUE(cm1.InfoFor(tid).children.empty());
}

}  // namespace
}  // namespace tabs::comm
