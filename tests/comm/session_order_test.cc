// Session-communication semantics: ordered at-most-once delivery between a
// node pair, and scheduler behaviour under heavier task loads.

#include <gtest/gtest.h>

#include "src/comm/network.h"
#include "src/sim/scheduler.h"

namespace tabs::comm {
namespace {

TEST(SessionOrderTest, SequentialCallsExecuteInOrder) {
  sim::Scheduler sched;
  sim::Substrate substrate(sched, sim::CostModel::Baseline(),
                           sim::ArchitectureModel::Prototype());
  Network net(substrate);
  net.AddNode(1);
  net.AddNode(2);
  std::vector<int> order;
  sched.Spawn("caller", 1, 0, [&] {
    for (int i = 0; i < 5; ++i) {
      net.SessionCall<int>(1, 2, "op", [&order, i] {
        order.push_back(i);
        return i;
      });
    }
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SessionOrderTest, DatagramsFromOneSenderArriveInSendOrder) {
  sim::Scheduler sched;
  sim::Substrate substrate(sched, sim::CostModel::Baseline(),
                           sim::ArchitectureModel::Prototype());
  Network net(substrate);
  net.AddNode(1);
  net.AddNode(2);
  std::vector<int> arrivals;
  sched.Spawn("sender", 1, 0, [&] {
    for (int i = 0; i < 5; ++i) {
      net.SendDatagram(1, 2, "d", [&arrivals, i] { arrivals.push_back(i); });
      sched.Charge(1'000);  // strictly increasing send times
    }
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(arrivals, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SessionOrderTest, InterleavedCallersShareTheDestinationFairly) {
  sim::Scheduler sched;
  sim::Substrate substrate(sched, sim::CostModel::Baseline(),
                           sim::ArchitectureModel::Prototype());
  Network net(substrate);
  for (NodeId n = 1; n <= 3; ++n) {
    net.AddNode(n);
  }
  int handled = 0;
  for (NodeId caller = 1; caller <= 2; ++caller) {
    sched.Spawn("caller", caller, caller * 100, [&net, &sched, &handled, caller] {
      for (int i = 0; i < 10; ++i) {
        auto r = net.SessionCall<int>(caller, 3, "op", [&handled] { return ++handled; });
        EXPECT_TRUE(r.ok());
      }
    });
  }
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(handled, 20);
}

TEST(SchedulerStressTest, ManyNestedSpawnsDrainCompletely) {
  sim::Scheduler sched;
  int completed = 0;
  // Each task spawns two children until depth 6: 2^7 - 1 = 127 tasks.
  std::function<void(int)> spawn_tree = [&](int depth) {
    ++completed;
    if (depth == 0) {
      return;
    }
    for (int i = 0; i < 2; ++i) {
      sched.Spawn("child", 1, sched.Now() + 10, [&, depth] { spawn_tree(depth - 1); });
    }
  };
  sched.Spawn("root", 1, 0, [&] { spawn_tree(6); });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(completed, 127);
}

TEST(SchedulerStressTest, WaitersAndNotifiersAtScale) {
  sim::Scheduler sched;
  sim::WaitQueue queue;
  int woken = 0;
  for (int i = 0; i < 64; ++i) {
    sched.Spawn("waiter", 1, i, [&] {
      if (sched.Wait(queue, 1'000'000)) {
        ++woken;
      }
    });
  }
  sched.Spawn("notifier", 2, 500, [&] {
    for (int i = 0; i < 64; ++i) {
      sched.Charge(10);
      sched.NotifyOne(queue);
    }
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(woken, 64);
}

}  // namespace
}  // namespace tabs::comm
