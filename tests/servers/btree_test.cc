// B-tree server tests (paper Section 4.4), including parameterized property
// sweeps over insertion orders and sizes, recoverable-allocator behaviour,
// and crash recovery of multi-level trees.

#include "src/servers/btree_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::BTreeServer;

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "key%05d", i);
  return buf;
}
std::string Val(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "val%05d", i);
  return buf;
}

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : world_(2) { bt_ = world_.AddServerOf<BTreeServer>(1, "btree", 400u); }
  void Refresh() { bt_ = world_.Server<BTreeServer>(1, "btree"); }

  World world_;
  BTreeServer* bt_;
};

TEST_F(BTreeTest, InsertLookupSingle) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(bt_->Insert(tx, "alpha", "1"), Status::kOk);
      EXPECT_EQ(bt_->Lookup(tx, "alpha").value(), "1");
      EXPECT_EQ(bt_->Lookup(tx, "beta").status(), Status::kNotFound);
      return Status::kOk;
    });
  });
}

TEST_F(BTreeTest, DuplicateInsertConflicts) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(bt_->Insert(tx, "k", "1"), Status::kOk);
      EXPECT_EQ(bt_->Insert(tx, "k", "2"), Status::kConflict);
      EXPECT_EQ(bt_->Lookup(tx, "k").value(), "1");
      return Status::kOk;
    });
  });
}

TEST_F(BTreeTest, UpdateRequiresExistence) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(bt_->Update(tx, "nope", "x"), Status::kNotFound);
      bt_->Insert(tx, "yes", "1");
      EXPECT_EQ(bt_->Update(tx, "yes", "2"), Status::kOk);
      EXPECT_EQ(bt_->Lookup(tx, "yes").value(), "2");
      return Status::kOk;
    });
  });
}

TEST_F(BTreeTest, RemoveAndLazyCleanup) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (int i = 0; i < 30; ++i) {
        EXPECT_EQ(bt_->Insert(tx, Key(i), Val(i)), Status::kOk);
      }
      for (int i = 0; i < 30; i += 2) {
        EXPECT_EQ(bt_->Remove(tx, Key(i)), Status::kOk);
      }
      for (int i = 0; i < 30; ++i) {
        if (i % 2 == 0) {
          EXPECT_EQ(bt_->Lookup(tx, Key(i)).status(), Status::kNotFound);
        } else {
          EXPECT_EQ(bt_->Lookup(tx, Key(i)).value(), Val(i));
        }
      }
      EXPECT_EQ(bt_->Remove(tx, Key(0)), Status::kNotFound);
      return Status::kOk;
    });
    EXPECT_TRUE(bt_->CheckInvariants());
  });
}

TEST_F(BTreeTest, ScanReturnsSortedRange) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (int i : {5, 1, 9, 3, 7, 2, 8}) {
        bt_->Insert(tx, Key(i), Val(i));
      }
      auto scan = bt_->Scan(tx, Key(2), Key(8));
      EXPECT_TRUE(scan.ok());
      if (!scan.ok()) {
        return Status::kInternal;
      }
      std::vector<std::string> keys;
      for (auto& [k, v] : scan.value()) {
        keys.push_back(k);
      }
      EXPECT_EQ(keys, (std::vector<std::string>{Key(2), Key(3), Key(5), Key(7), Key(8)}));
      EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
      return Status::kOk;
    });
  });
}

TEST_F(BTreeTest, AbortRollsBackSplitsAndAllocations) {
  world_.RunApp(1, [&](Application& app) {
    std::uint32_t before = bt_->AllocatedPages();
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    for (int i = 0; i < 100; ++i) {  // forces multiple splits
      ASSERT_EQ(bt_->Insert(tx, Key(i), Val(i)), Status::kOk);
    }
    app.Abort(t);
    // The recoverable storage allocator returned every page.
    EXPECT_EQ(bt_->AllocatedPages(), before);
    EXPECT_TRUE(bt_->CheckInvariants());
    app.Transaction([&](const server::Tx& tx2) {
      EXPECT_EQ(bt_->Lookup(tx2, Key(50)).status(), Status::kNotFound);
      EXPECT_EQ(bt_->Size(tx2).value(), 0u);
      return Status::kOk;
    });
  });
}

TEST_F(BTreeTest, MultiLevelTreeSurvivesCrash) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(bt_->Insert(tx, Key(i), Val(i)), Status::kOk);
      }
      return Status::kOk;
    });
    world_.CrashNode(1);
  });
  world_.RunApp(2, [&](Application& app) {
    world_.RecoverNode(1);
    Refresh();
    EXPECT_TRUE(bt_->CheckInvariants());
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(bt_->Lookup(tx, Key(i)).value(), Val(i));
      }
      EXPECT_EQ(bt_->Size(tx).value(), 200u);
      return Status::kOk;
    });
  });
}

TEST_F(BTreeTest, OversizeKeysRejected) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(bt_->Insert(tx, std::string(40, 'x'), "v"), Status::kOutOfRange);
      EXPECT_EQ(bt_->Insert(tx, "k", std::string(70, 'v')), Status::kOutOfRange);
      EXPECT_EQ(bt_->Insert(tx, "", "v"), Status::kOutOfRange);
      return Status::kOk;
    });
  });
}

// ---- property sweep: random workloads vs a std::map model -------------------

struct SweepParam {
  int operations;
  unsigned seed;
  int key_space;
};

class BTreePropertyTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  // ASSERT_* macros need a void function; the transaction lambda calls this.
  static void RunModelWorkload(BTreeServer* bt, const server::Tx& tx,
                               const SweepParam& param) {
    std::map<std::string, std::string> model;
    std::mt19937 rng(param.seed);
    for (int i = 0; i < param.operations; ++i) {
      int k = static_cast<int>(rng() % param.key_space);
      std::string key = Key(k);
      switch (rng() % 4) {
        case 0: {  // insert
          Status s = bt->Insert(tx, key, Val(i));
          Status expect = model.contains(key) ? Status::kConflict : Status::kOk;
          ASSERT_EQ(s, expect) << "insert " << key;
          if (s == Status::kOk) {
            model[key] = Val(i);
          }
          break;
        }
        case 1: {  // remove
          Status s = bt->Remove(tx, key);
          Status expect = model.contains(key) ? Status::kOk : Status::kNotFound;
          ASSERT_EQ(s, expect) << "remove " << key;
          model.erase(key);
          break;
        }
        case 2: {  // upsert
          ASSERT_EQ(bt->Upsert(tx, key, Val(i)), Status::kOk);
          model[key] = Val(i);
          break;
        }
        default: {  // lookup
          auto v = bt->Lookup(tx, key);
          if (model.contains(key)) {
            ASSERT_TRUE(v.ok());
            ASSERT_EQ(v.value(), model[key]);
          } else {
            ASSERT_EQ(v.status(), Status::kNotFound);
          }
        }
      }
    }
    // Full scan equals the model.
    auto scan = bt->Scan(tx, "", "~");
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan.value().size(), model.size());
    auto it = model.begin();
    for (auto& [k, v] : scan.value()) {
      ASSERT_EQ(k, it->first);
      ASSERT_EQ(v, it->second);
      ++it;
    }
  }
};

TEST_P(BTreePropertyTest, MatchesMapModel) {
  const SweepParam param = GetParam();
  World world(1);
  auto* bt = world.AddServerOf<BTreeServer>(1, "btree", 390u);
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      RunModelWorkload(bt, tx, param);
      return ::testing::Test::HasFatalFailure() ? Status::kInternal : Status::kOk;
    });
    EXPECT_TRUE(bt->CheckInvariants());
  });
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, BTreePropertyTest,
    ::testing::Values(SweepParam{100, 1, 20}, SweepParam{200, 2, 50},
                      SweepParam{300, 3, 10}, SweepParam{400, 4, 200},
                      SweepParam{250, 5, 5}, SweepParam{500, 6, 64}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "ops" + std::to_string(info.param.operations) + "_seed" +
             std::to_string(info.param.seed) + "_keys" + std::to_string(info.param.key_space);
    });

}  // namespace
}  // namespace tabs
