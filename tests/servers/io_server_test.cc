// IO server tests (paper Section 4.3): transaction-revealing display
// states, permanence of output across client aborts and node crashes.

#include "src/servers/io_server.h"

#include <gtest/gtest.h>

#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::DisplayState;
using servers::IoAreaId;
using servers::IoServer;

class IoServerTest : public ::testing::Test {
 protected:
  IoServerTest() : world_(2) { io_ = world_.AddServerOf<IoServer>(1, "io", 4u); }
  void Refresh() { io_ = world_.Server<IoServer>(1, "io"); }

  World world_;
  IoServer* io_;
};

TEST_F(IoServerTest, OutputIsGrayWhileInProgressThenBlack) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    auto area = io_->ObtainIOArea(tx);
    ASSERT_TRUE(area.ok());
    io_->WriteLnToArea(tx, area.value(), "deposited 35 dollars");
    auto lines = io_->Render(area.value());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].state, DisplayState::kInProgress);  // gray
    EXPECT_EQ(lines[0].text, "deposited 35 dollars");
    EXPECT_EQ(app.End(t), Status::kOk);
    lines = io_->Render(area.value());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].state, DisplayState::kCommitted);  // redrawn in black
  });
}

TEST_F(IoServerTest, AbortedTransactionOutputIsStruckThrough) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    auto area = io_->ObtainIOArea(tx);
    ASSERT_TRUE(area.ok());
    io_->WriteLnToArea(tx, area.value(), "withdraw 80 dollars");
    app.Abort(t);
    auto lines = io_->Render(area.value());
    ASSERT_EQ(lines.size(), 1u);
    // "If the transaction aborts, lines are drawn through the output. This
    // is preferable to making the output disappear."
    EXPECT_EQ(lines[0].state, DisplayState::kAborted);
    EXPECT_EQ(lines[0].text, "withdraw 80 dollars");
  });
}

TEST_F(IoServerTest, ReadLineEchoesInputMarked) {
  world_.RunApp(1, [&](Application& app) {
    io_->TypeInput(0, "checking");
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    auto area = io_->ObtainIOArea(tx);
    ASSERT_TRUE(area.ok());
    auto line = io_->ReadLineFromArea(tx, area.value());
    ASSERT_TRUE(line.ok());
    EXPECT_EQ(line.value(), "checking");
    auto lines = io_->Render(area.value());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(lines[0].is_input);  // boxed in the paper
    app.End(t);
  });
}

TEST_F(IoServerTest, ReadLineBlocksUntilInputTyped) {
  std::string got;
  world_.SpawnApp(1, "reader", [&](Application& app) {
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    auto area = io_->ObtainIOArea(tx);
    auto line = io_->ReadLineFromArea(tx, area.value());
    if (line.ok()) {
      got = line.value();
    }
    app.End(t);
  });
  world_.SpawnApp(1, "typist", [&](Application& app) {
    world_.scheduler().Charge(1'000'000);
    io_->TypeInput(0, "hello");
  }, 10);
  EXPECT_EQ(world_.Drain(), 0);
  EXPECT_EQ(got, "hello");
}

TEST_F(IoServerTest, ScreenRestoredAfterCrashShowsAbortedOutput) {
  // The Figure 4-1 area-two scenario: the node fails during a withdrawal;
  // after restart the output is there, struck through.
  IoAreaId area = 0;
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    auto a = io_->ObtainIOArea(tx);
    ASSERT_TRUE(a.ok());
    area = a.value();
    io_->WriteLnToArea(tx, area, "withdraw 80 dollars from checking");
    world_.rm(1).log().ForceAll();
    world_.CrashNode(1);  // mid-transaction
  });
  world_.RunApp(2, [&](Application& app) {
    world_.RecoverNode(1);
    Refresh();
    auto lines = io_->Render(area);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].text, "withdraw 80 dollars from checking");
    EXPECT_EQ(lines[0].state, DisplayState::kAborted);
  });
}

TEST_F(IoServerTest, CommittedOutputSurvivesCrashAsCommitted) {
  IoAreaId area = 0;
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      auto a = io_->ObtainIOArea(tx);
      area = a.value();
      io_->WriteLnToArea(tx, area, "deposited 35 dollars");
      return Status::kOk;
    });
    world_.CrashNode(1);
  });
  world_.RunApp(2, [&](Application& app) {
    world_.RecoverNode(1);
    Refresh();
    auto lines = io_->Render(area);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].state, DisplayState::kCommitted);
  });
}

TEST_F(IoServerTest, MultipleAreasIndependentStates) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t1 = app.Begin();
    auto a1 = io_->ObtainIOArea(app.MakeTx(t1));
    io_->WriteLnToArea(app.MakeTx(t1), a1.value(), "one");
    TransactionId t2 = app.Begin();
    auto a2 = io_->ObtainIOArea(app.MakeTx(t2));
    io_->WriteLnToArea(app.MakeTx(t2), a2.value(), "two");
    EXPECT_NE(a1.value(), a2.value());
    app.End(t1);
    app.Abort(t2);
    EXPECT_EQ(io_->Render(a1.value())[0].state, DisplayState::kCommitted);
    EXPECT_EQ(io_->Render(a2.value())[0].state, DisplayState::kAborted);
  });
}

TEST_F(IoServerTest, WriteToAreaAccumulatesUntilLineEnds) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      auto a = io_->ObtainIOArea(tx);
      io_->WriteToArea(tx, a.value(), "balance: ");
      io_->WriteToArea(tx, a.value(), "$35");
      io_->WriteLnToArea(tx, a.value(), " (checking)");
      auto lines = io_->Render(a.value());
      EXPECT_EQ(lines.size(), 1u);
      EXPECT_EQ(lines[0].text, "balance: $35 (checking)");
      return Status::kOk;
    });
  });
}

TEST_F(IoServerTest, ReadCharConsumesInputCharacterwise) {
  world_.RunApp(1, [&](Application& app) {
    io_->TypeInput(0, "yes");
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    auto area = io_->ObtainIOArea(tx);
    EXPECT_EQ(io_->ReadCharFromArea(tx, area.value()).value(), 'y');
    EXPECT_EQ(io_->ReadCharFromArea(tx, area.value()).value(), 'e');
    EXPECT_EQ(io_->ReadCharFromArea(tx, area.value()).value(), 's');
    app.End(t);
    // Each echoed character is marked as input on the display.
    auto lines = io_->Render(area.value());
    EXPECT_EQ(lines.size(), 3u);
    for (const auto& l : lines) {
      EXPECT_TRUE(l.is_input);
    }
  });
}

TEST_F(IoServerTest, DestroyedAreaIsReusable) {
  world_.RunApp(1, [&](Application& app) {
    servers::IoAreaId first = 0;
    app.Transaction([&](const server::Tx& tx) {
      auto a = io_->ObtainIOArea(tx);
      first = a.value();
      io_->WriteLnToArea(tx, a.value(), "old content");
      return Status::kOk;
    });
    app.Transaction([&](const server::Tx& tx) { return io_->DestroyIOArea(tx, first); });
    app.Transaction([&](const server::Tx& tx) {
      auto a = io_->ObtainIOArea(tx);
      EXPECT_EQ(a.value(), first);  // freed area reused
      EXPECT_TRUE(io_->Render(a.value()).empty());  // and cleared
      return Status::kOk;
    });
  });
}

TEST_F(IoServerTest, AreasExhaustedReportsConflict) {
  world_.RunApp(1, [&](Application& app) {
    std::vector<TransactionId> holders;
    for (int i = 0; i < 4; ++i) {  // the fixture's IoServer has 4 areas
      TransactionId t = app.Begin();
      EXPECT_TRUE(io_->ObtainIOArea(app.MakeTx(t)).ok());
      holders.push_back(t);
    }
    TransactionId extra = app.Begin();
    EXPECT_EQ(io_->ObtainIOArea(app.MakeTx(extra)).status(), Status::kConflict);
    app.Abort(extra);
    for (TransactionId t : holders) {
      app.Abort(t);
    }
  });
}

TEST_F(IoServerTest, RenderScreenShowsMarkup) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      auto a = io_->ObtainIOArea(tx);
      io_->WriteLnToArea(tx, a.value(), "hello world");
      return Status::kOk;
    });
    std::string screen = io_->RenderScreen();
    EXPECT_NE(screen.find("[black] hello world"), std::string::npos);
  });
}

}  // namespace
}  // namespace tabs
