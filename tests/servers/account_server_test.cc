// Account server tests: type-specific (increment/decrement) locking,
// escrow admission, operation-logged undo/redo, crash recovery, and the
// concurrency win over shared/exclusive locking.

#include "src/servers/account_server.h"

#include <gtest/gtest.h>

#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::AccountServer;

class AccountTest : public ::testing::Test {
 protected:
  AccountTest() : world_(2) {
    acct_ = world_.AddServerOf<AccountServer>(1, "accounts", 16u);
  }
  void Refresh() { acct_ = world_.Server<AccountServer>(1, "accounts"); }

  World world_;
  AccountServer* acct_;
};

TEST_F(AccountTest, DepositWithdrawReadBalance) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(acct_->Deposit(tx, 0, 100), Status::kOk);
      return Status::kOk;
    });
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(acct_->Withdraw(tx, 0, 30), Status::kOk);
      return Status::kOk;
    });
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(acct_->ReadBalance(tx, 0).value(), 70);
      return Status::kOk;
    });
  });
}

TEST_F(AccountTest, ConcurrentDepositsDoNotBlock) {
  // The typed matrix makes increment locks compatible: two live
  // transactions update the same account with no waiting.
  world_.RunApp(1, [&](Application& app) {
    TransactionId t1 = app.Begin();
    TransactionId t2 = app.Begin();
    SimTime before = world_.scheduler().Now();
    EXPECT_EQ(acct_->Deposit(app.MakeTx(t1), 0, 10), Status::kOk);
    EXPECT_EQ(acct_->Deposit(app.MakeTx(t2), 0, 20), Status::kOk);  // no lock wait
    SimTime elapsed = world_.scheduler().Now() - before;
    // Both ran without any lock timeout (5 s) entering the latency.
    EXPECT_LT(elapsed, 1'000'000);
    EXPECT_EQ(app.End(t1), Status::kOk);
    EXPECT_EQ(app.End(t2), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(acct_->ReadBalance(tx, 0).value(), 30);
      return Status::kOk;
    });
  });
}

TEST_F(AccountTest, ConcurrentMixedUpdatesCommute) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return acct_->Deposit(tx, 0, 100); });
    TransactionId dep = app.Begin();
    TransactionId wdr = app.Begin();
    EXPECT_EQ(acct_->Deposit(app.MakeTx(dep), 0, 5), Status::kOk);
    EXPECT_EQ(acct_->Withdraw(app.MakeTx(wdr), 0, 50), Status::kOk);  // commutes
    app.End(wdr);
    app.End(dep);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(acct_->ReadBalance(tx, 0).value(), 55);
      return Status::kOk;
    });
  });
}

TEST_F(AccountTest, ReadConflictsWithInFlightUpdate) {
  // Serializability is preserved: a reader cannot observe a balance while an
  // uncommitted update holds an increment lock.
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    acct_->Deposit(app.MakeTx(t), 0, 10);
    TransactionId reader = app.Begin();
    auto v = acct_->ReadBalance(app.MakeTx(reader), 0);
    EXPECT_EQ(v.status(), Status::kTimeout);
    app.Abort(reader);
    app.End(t);
  });
}

TEST_F(AccountTest, AbortUndoesDepositLogically) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return acct_->Deposit(tx, 0, 100); });
    TransactionId t = app.Begin();
    acct_->Deposit(app.MakeTx(t), 0, 40);
    app.Abort(t);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(acct_->ReadBalance(tx, 0).value(), 100);
      return Status::kOk;
    });
  });
}

TEST_F(AccountTest, AbortUndoesOnlyOwnEffectUnderConcurrency) {
  // The operation-logging point: with interleaved updates on the same
  // balance, undo must be logical (subtract my deposit), not value-based
  // (restore my before-image, which would erase the other transaction too).
  world_.RunApp(1, [&](Application& app) {
    TransactionId a = app.Begin();
    TransactionId b = app.Begin();
    acct_->Deposit(app.MakeTx(a), 0, 10);
    acct_->Deposit(app.MakeTx(b), 0, 200);
    app.Abort(a);              // must not erase b's 200
    EXPECT_EQ(app.End(b), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(acct_->ReadBalance(tx, 0).value(), 200);
      return Status::kOk;
    });
  });
}

TEST_F(AccountTest, EscrowRejectsRiskyWithdrawal) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return acct_->Deposit(tx, 0, 100); });
    TransactionId w1 = app.Begin();
    EXPECT_EQ(acct_->Withdraw(app.MakeTx(w1), 0, 80), Status::kOk);
    // A second withdrawal of 80 might overdraw if both commit: rejected
    // immediately (kConflict), no waiting.
    TransactionId w2 = app.Begin();
    EXPECT_EQ(acct_->Withdraw(app.MakeTx(w2), 0, 80), Status::kConflict);
    app.Abort(w2);
    app.End(w1);
    // After w1 commits, the headroom is real.
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(acct_->Withdraw(tx, 0, 20), Status::kOk);
      return Status::kOk;
    });
  });
}

TEST_F(AccountTest, UncommittedDepositCannotFundWithdrawal) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId dep = app.Begin();
    acct_->Deposit(app.MakeTx(dep), 0, 100);
    // The 100 is applied in memory but could abort: a withdrawal against it
    // must be refused.
    TransactionId wdr = app.Begin();
    EXPECT_EQ(acct_->Withdraw(app.MakeTx(wdr), 0, 50), Status::kConflict);
    app.Abort(wdr);
    app.Abort(dep);
  });
}

TEST_F(AccountTest, CommittedBalancesSurviveCrashViaOperationRecovery) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      acct_->Deposit(tx, 0, 100);
      acct_->Deposit(tx, 1, 50);
      return Status::kOk;
    });
    app.Transaction([&](const server::Tx& tx) { return acct_->Withdraw(tx, 0, 25); });
    // One loser in flight at the crash.
    TransactionId t = app.Begin();
    acct_->Deposit(app.MakeTx(t), 1, 999);
    world_.rm(1).log().ForceAll();
    world_.CrashNode(1);
  });
  world_.RunApp(2, [&](Application& app) {
    auto stats = world_.RecoverNode(1);
    EXPECT_EQ(stats.passes, 3);  // operation records force the 3-pass algorithm
    EXPECT_EQ(stats.losers.size(), 1u);
    Refresh();
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(acct_->ReadBalance(tx, 0).value(), 75);
      EXPECT_EQ(acct_->ReadBalance(tx, 1).value(), 50);  // loser's 999 undone
      return Status::kOk;
    });
  });
}

TEST_F(AccountTest, ManyConcurrentUpdatersConserveMoney) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return acct_->Deposit(tx, 0, 1000); });
  });
  int committed_deposits = 0;
  int committed_withdrawals = 0;
  for (int i = 0; i < 8; ++i) {
    world_.SpawnApp(1, "updater", [&, i](Application& app) {
      for (int r = 0; r < 5; ++r) {
        Status s = app.Transaction([&](const server::Tx& tx) {
          if ((i + r) % 2 == 0) {
            return acct_->Deposit(tx, 0, 7);
          }
          return acct_->Withdraw(tx, 0, 3);
        });
        if (s == Status::kOk) {
          if ((i + r) % 2 == 0) {
            ++committed_deposits;
          } else {
            ++committed_withdrawals;
          }
        }
      }
    }, i * 1'000);
  }
  EXPECT_EQ(world_.Drain(), 0);
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      std::int64_t expect = 1000 + 7 * committed_deposits - 3 * committed_withdrawals;
      EXPECT_EQ(acct_->ReadBalance(tx, 0).value(), expect);
      return Status::kOk;
    });
  });
}

TEST_F(AccountTest, InvalidArguments) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(acct_->Deposit(tx, 999, 1), Status::kOutOfRange);
      EXPECT_EQ(acct_->Deposit(tx, 0, 0), Status::kOutOfRange);
      EXPECT_EQ(acct_->Withdraw(tx, 0, -5), Status::kOutOfRange);
      EXPECT_EQ(acct_->ReadBalance(tx, 999).status(), Status::kOutOfRange);
      return Status::kOk;
    });
  });
}

}  // namespace
}  // namespace tabs
