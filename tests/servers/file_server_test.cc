// Transactional file server tests: create/write/read/remove semantics,
// failure atomicity of multi-page writes, allocator reclamation on abort,
// per-file concurrency, and crash recovery.

#include "src/servers/file_server.h"

#include <gtest/gtest.h>

#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::FileServer;

Bytes Blob(size_t n, std::uint8_t fill) { return Bytes(n, fill); }

class FileServerTest : public ::testing::Test {
 protected:
  FileServerTest() : world_(2) {
    fs_ = world_.AddServerOf<FileServer>(1, "fs", PageNumber{128});
  }
  void Refresh() { fs_ = world_.Server<FileServer>(1, "fs"); }

  World world_;
  FileServer* fs_;
};

TEST_F(FileServerTest, CreateWriteReadRoundTrip) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(fs_->Create(tx, "notes.txt"), Status::kOk);
      EXPECT_EQ(fs_->Write(tx, "notes.txt", 0, Bytes{'h', 'i'}), Status::kOk);
      auto data = fs_->Read(tx, "notes.txt", 0, 100);
      EXPECT_EQ(data.value(), (Bytes{'h', 'i'}));
      EXPECT_EQ(fs_->Size(tx, "notes.txt").value(), 2u);
      return Status::kOk;
    });
  });
}

TEST_F(FileServerTest, DuplicateCreateConflicts) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      fs_->Create(tx, "f");
      EXPECT_EQ(fs_->Create(tx, "f"), Status::kConflict);
      return Status::kOk;
    });
  });
}

TEST_F(FileServerTest, MultiPageWriteSpansPages) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      fs_->Create(tx, "big");
      Bytes data(3 * kPageSize + 100);
      for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(i % 251);
      }
      EXPECT_EQ(fs_->Write(tx, "big", 0, data), Status::kOk);
      auto back = fs_->Read(tx, "big", 0, static_cast<std::uint32_t>(data.size()));
      EXPECT_EQ(back.value(), data);
      // Partial read across a page boundary.
      auto middle = fs_->Read(tx, "big", kPageSize - 10, 20);
      Bytes expect(data.begin() + kPageSize - 10, data.begin() + kPageSize + 10);
      EXPECT_EQ(middle.value(), expect);
      return Status::kOk;
    });
  });
}

TEST_F(FileServerTest, AppendGrowsFile) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      fs_->Create(tx, "log");
      fs_->Append(tx, "log", Blob(300, 1));
      fs_->Append(tx, "log", Blob(300, 2));
      EXPECT_EQ(fs_->Size(tx, "log").value(), 600u);
      auto tail = fs_->Read(tx, "log", 300, 300);
      EXPECT_EQ(tail.value(), Blob(300, 2));
      return Status::kOk;
    });
  });
}

TEST_F(FileServerTest, AbortReclaimsPagesAndUnwindsContent) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      fs_->Create(tx, "keep");
      return fs_->Write(tx, "keep", 0, Blob(100, 7));
    });
    std::uint32_t before = fs_->AllocatedPages();
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    fs_->Create(tx, "doomed");
    fs_->Write(tx, "doomed", 0, Blob(4 * kPageSize, 9));
    fs_->Write(tx, "keep", 0, Blob(100, 8));
    app.Abort(t);
    EXPECT_EQ(fs_->AllocatedPages(), before);  // allocator rolled back
    app.Transaction([&](const server::Tx& tx2) {
      EXPECT_EQ(fs_->Read(tx2, "doomed", 0, 10).status(), Status::kNotFound);
      EXPECT_EQ(fs_->Read(tx2, "keep", 0, 100).value(), Blob(100, 7));
      return Status::kOk;
    });
  });
}

TEST_F(FileServerTest, RemoveFreesPagesAndNameReusable) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      fs_->Create(tx, "tmp");
      return fs_->Write(tx, "tmp", 0, Blob(2 * kPageSize, 3));
    });
    std::uint32_t with_file = fs_->AllocatedPages();
    app.Transaction([&](const server::Tx& tx) { return fs_->Remove(tx, "tmp"); });
    EXPECT_LT(fs_->AllocatedPages(), with_file);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(fs_->Create(tx, "tmp"), Status::kOk);  // name free again
      EXPECT_EQ(fs_->Size(tx, "tmp").value(), 0u);     // and empty
      return Status::kOk;
    });
  });
}

TEST_F(FileServerTest, ListReturnsSortedNames) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      fs_->Create(tx, "zeta");
      fs_->Create(tx, "alpha");
      fs_->Create(tx, "mu");
      auto names = fs_->List(tx);
      EXPECT_EQ(names.value(), (std::vector<std::string>{"alpha", "mu", "zeta"}));
      return Status::kOk;
    });
  });
}

TEST_F(FileServerTest, IndependentFilesAllowConcurrentWriters) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      fs_->Create(tx, "a");
      fs_->Create(tx, "b");
      return Status::kOk;
    });
    TransactionId t1 = app.Begin();
    TransactionId t2 = app.Begin();
    EXPECT_EQ(fs_->Write(app.MakeTx(t1), "a", 0, Blob(10, 1)), Status::kOk);
    // A different file: no slot-lock conflict with t1.
    EXPECT_EQ(fs_->Write(app.MakeTx(t2), "b", 0, Blob(10, 2)), Status::kOk);
    // The same file: conflicts with t1's exclusive slot lock.
    TransactionId t3 = app.Begin();
    EXPECT_EQ(fs_->Read(app.MakeTx(t3), "a", 0, 4).status(), Status::kTimeout);
    app.Abort(t3);
    app.End(t1);
    app.End(t2);
  });
}

TEST_F(FileServerTest, CommittedFilesSurviveCrash) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      fs_->Create(tx, "persistent");
      return fs_->Write(tx, "persistent", 0, Blob(700, 5));  // spans two pages
    });
    // An uncommitted file is in flight at the crash.
    TransactionId t = app.Begin();
    fs_->Create(app.MakeTx(t), "ghost");
    fs_->Write(app.MakeTx(t), "ghost", 0, Blob(100, 6));
    world_.rm(1).log().ForceAll();
    world_.CrashNode(1);
  });
  world_.RunApp(2, [&](Application&) {
    world_.RecoverNode(1);
    Refresh();
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(fs_->Read(tx, "persistent", 0, 700).value(), Blob(700, 5));
      EXPECT_EQ(fs_->Read(tx, "ghost", 0, 10).status(), Status::kNotFound);
      auto names = fs_->List(tx);
      EXPECT_EQ(names.value(), (std::vector<std::string>{"persistent"}));
      return Status::kOk;
    });
  });
}

TEST_F(FileServerTest, ReusedPagesDoNotAliasAcrossCrashRecovery) {
  // Regression: a freed page reused by a new file, with the whole history in
  // the log, must recover to the NEW file's contents — logged objects have
  // stable whole-page identities, so the old file's records cannot bleed
  // through during the backward pass.
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      fs_->Create(tx, "old");
      return fs_->Write(tx, "old", 0, Blob(100, 0xAA));
    });
    app.Transaction([&](const server::Tx& tx) { return fs_->Remove(tx, "old"); });
    app.Transaction([&](const server::Tx& tx) {
      fs_->Create(tx, "new");
      Bytes data(30);
      for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(i);
      }
      return fs_->Write(tx, "new", 0, data);  // most likely reuses old's page
    });
    world_.CrashNode(1);
  });
  world_.RunApp(2, [&](Application&) {
    world_.RecoverNode(1);
    Refresh();
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      auto data = fs_->Read(tx, "new", 0, 30);
      EXPECT_TRUE(data.ok());
      if (!data.ok()) {
        return data.status();
      }
      for (size_t i = 0; i < 30; ++i) {
        EXPECT_EQ(data.value()[i], static_cast<std::uint8_t>(i)) << "byte " << i;
      }
      return Status::kOk;
    });
  });
}

TEST_F(FileServerTest, LimitsEnforced) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(fs_->Create(tx, ""), Status::kOutOfRange);
      EXPECT_EQ(fs_->Create(tx, std::string(40, 'x')), Status::kOutOfRange);
      fs_->Create(tx, "f");
      EXPECT_EQ(fs_->Write(tx, "f", FileServer::kMaxFileBytes - 1, Blob(2, 1)),
                Status::kOutOfRange);
      EXPECT_EQ(fs_->Read(tx, "missing", 0, 1).status(), Status::kNotFound);
      EXPECT_EQ(fs_->Remove(tx, "missing"), Status::kNotFound);
      return Status::kOk;
    });
  });
}

}  // namespace
}  // namespace tabs
