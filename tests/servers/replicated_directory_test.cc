// Replicated directory tests (paper Section 4.5): weighted voting over
// three nodes, availability with one representative down, atomic multi-node
// commit and abort, version monotonicity.

#include "src/servers/replicated_directory.h"

#include <gtest/gtest.h>

#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::BTreeServer;
using servers::DirectoryRep;
using servers::ReplicatedDirectory;

class ReplicatedDirectoryTest : public ::testing::Test {
 protected:
  ReplicatedDirectoryTest() : world_(3) {
    // "Our tests so far involve 3 nodes, which permits one node to fail and
    // have the data remain available": votes 1+1+1, r = 2, w = 2.
    for (NodeId n = 1; n <= 3; ++n) {
      world_.AddServerOf<BTreeServer>(n, "dir-btree", 200u);
      // The factory resolves the B-tree at (re)construction time, so a
      // recovered representative binds to the recovered B-tree (blueprints
      // re-run in installation order).
      World* w = &world_;
      world_.AddServer(n, "dir-rep", [w, n](const server::ServerContext& ctx) {
        return std::make_unique<DirectoryRep>(ctx, w->Server<BTreeServer>(n, "dir-btree"), 1);
      });
    }
    RebuildClientModule();
  }

  // The client module holds raw pointers into server instances; re-point
  // them after any recovery (the blueprint factory above captures the
  // original B-tree, so recovery must also re-wire storage).
  void RebuildClientModule() {
    std::vector<ReplicatedDirectory::Replica> reps;
    for (NodeId n = 1; n <= 3; ++n) {
      auto* rep = world_.Server<DirectoryRep>(n, "dir-rep");
      rep->SetStorage(world_.Server<BTreeServer>(n, "dir-btree"));
      reps.push_back({rep, n});
    }
    dir_ = std::make_unique<ReplicatedDirectory>(std::move(reps), 2, 2);
  }

  World world_;
  std::unique_ptr<ReplicatedDirectory> dir_;
};

TEST_F(ReplicatedDirectoryTest, InsertLookupAcrossNodes) {
  world_.RunApp(1, [&](Application& app) {
    Status s = app.Transaction([&](const server::Tx& tx) {
      return dir_->Insert(tx, "hosts", "perq1,perq2");
    });
    EXPECT_EQ(s, Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(dir_->Lookup(tx, "hosts").value(), "perq1,perq2");
      return Status::kOk;
    });
  });
}

TEST_F(ReplicatedDirectoryTest, DuplicateInsertConflicts) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return dir_->Insert(tx, "k", "1"); });
    Status s = app.Transaction([&](const server::Tx& tx) {
      return dir_->Insert(tx, "k", "2");
    });
    EXPECT_EQ(s, Status::kConflict);
  });
}

TEST_F(ReplicatedDirectoryTest, UpdateAndRemove) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return dir_->Insert(tx, "k", "1"); });
    EXPECT_EQ(app.Transaction([&](const server::Tx& tx) { return dir_->Update(tx, "k", "2"); }),
              Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(dir_->Lookup(tx, "k").value(), "2");
      return Status::kOk;
    });
    EXPECT_EQ(app.Transaction([&](const server::Tx& tx) { return dir_->Remove(tx, "k"); }),
              Status::kOk);
    EXPECT_EQ(app.Transaction([&](const server::Tx& tx) { return dir_->Update(tx, "k", "3"); }),
              Status::kNotFound);
  });
}

TEST_F(ReplicatedDirectoryTest, AvailableWithOneNodeDown) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return dir_->Insert(tx, "svc", "v1"); });
    world_.CrashNode(3);
    // Reads and writes still reach a quorum (2 of 3 votes).
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(dir_->Lookup(tx, "svc").value(), "v1");
      return Status::kOk;
    });
    EXPECT_EQ(
        app.Transaction([&](const server::Tx& tx) { return dir_->Update(tx, "svc", "v2"); }),
        Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(dir_->Lookup(tx, "svc").value(), "v2");
      return Status::kOk;
    });
  });
}

TEST_F(ReplicatedDirectoryTest, NoQuorumWithTwoNodesDown) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return dir_->Insert(tx, "k", "1"); });
    world_.CrashNode(2);
    world_.CrashNode(3);
    Status s = app.Transaction([&](const server::Tx& tx) {
      return dir_->Lookup(tx, "k").status();
    });
    EXPECT_EQ(s, Status::kNoQuorum);
  });
}

TEST_F(ReplicatedDirectoryTest, RecoveredReplicaCatchesUpThroughVersions) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return dir_->Insert(tx, "k", "v1"); });
    world_.CrashNode(3);
    // Two updates happen while node 3 is down: its copy goes stale.
    app.Transaction([&](const server::Tx& tx) { return dir_->Update(tx, "k", "v2"); });
    app.Transaction([&](const server::Tx& tx) { return dir_->Update(tx, "k", "v3"); });
    world_.RecoverNode(3);
    RebuildClientModule();
    // Any read quorum must include a current representative; the highest
    // version wins, so the stale copy is never believed.
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(dir_->Lookup(tx, "k").value(), "v3");
      return Status::kOk;
    });
    // A write re-installs the latest version at every reachable rep,
    // bringing node 3 current again.
    app.Transaction([&](const server::Tx& tx) { return dir_->Update(tx, "k", "v4"); });
    app.Transaction([&](const server::Tx& tx) {
      server::Tx t3 = tx;
      auto* rep3 = world_.Server<DirectoryRep>(3, "dir-rep");
      auto e = rep3->RepRead(t3, "k");
      EXPECT_TRUE(e.ok());
      EXPECT_EQ(e.value().value, "v4");
      return Status::kOk;
    });
  });
}

TEST_F(ReplicatedDirectoryTest, AbortUndoesAllRepresentatives) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    EXPECT_EQ(dir_->Insert(app.MakeTx(t), "k", "doomed"), Status::kOk);
    app.Abort(t);  // multi-node recovery, as the paper highlights
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(dir_->Lookup(tx, "k").status(), Status::kNotFound);
      return Status::kOk;
    });
  });
}

TEST_F(ReplicatedDirectoryTest, RemoveLeavesTombstoneNotResurrection) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return dir_->Insert(tx, "k", "v1"); });
    app.Transaction([&](const server::Tx& tx) { return dir_->Remove(tx, "k"); });
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(dir_->Lookup(tx, "k").status(), Status::kNotFound);
      EXPECT_EQ(dir_->Remove(tx, "k"), Status::kNotFound);
      return Status::kOk;
    });
    // Re-insert after removal works and bumps past the tombstone version.
    EXPECT_EQ(
        app.Transaction([&](const server::Tx& tx) { return dir_->Insert(tx, "k", "v2"); }),
        Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(dir_->Lookup(tx, "k").value(), "v2");
      return Status::kOk;
    });
  });
}

}  // namespace
}  // namespace tabs
