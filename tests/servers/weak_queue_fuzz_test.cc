// Model-based fuzz for the weak queue: random enqueue/dequeue/abort traffic
// checked against a multiset (weak queues promise set semantics with
// failure atomicity, not FIFO order), with crashes mixed in.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "src/servers/weak_queue_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::WeakQueueServer;

class WeakQueueFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(WeakQueueFuzzTest, ContentsMatchMultisetModel) {
  std::mt19937 rng(GetParam());
  // The drain-equals-model oracle needs synchronous commit outcomes. Under
  // Paxos Commit a post-recovery commit can exceed the vote timeout (the
  // recovery task's redo charges queue ahead of the acceptor's force in
  // virtual time) and park in doubt — consistent, but unreachable for a
  // drain that treats the first failed dequeue as "queue empty".
  WorldOptions opt;
  opt.commit_mode = txn::CommitMode::kTwoPhase;
  World world(2, opt);
  auto* q = world.AddServerOf<WeakQueueServer>(1, "q", 24u);
  std::multiset<std::int32_t> model;  // committed contents
  std::int32_t next_value = 0;

  for (int round = 0; round < 8; ++round) {
    world.RunApp(1, [&](Application& app) {
      for (int step = 0; step < 12; ++step) {
        switch (rng() % 4) {
          case 0: {  // committed enqueue (if capacity permits)
            std::int32_t v = next_value++;
            Status s = app.Transaction(
                [&](const server::Tx& tx) { return q->Enqueue(tx, v); });
            if (s == Status::kOk) {
              model.insert(v);
            }
            break;
          }
          case 1: {  // aborted enqueue: leaves only a gap
            TransactionId t = app.Begin();
            q->Enqueue(app.MakeTx(t), next_value++);
            app.Abort(t);
            break;
          }
          case 2: {  // committed dequeue
            std::int32_t got = 0;
            Status s = app.Transaction([&](const server::Tx& tx) {
              auto v = q->Dequeue(tx);
              if (!v.ok()) {
                return v.status();
              }
              got = v.value();
              return Status::kOk;
            });
            if (s == Status::kOk) {
              auto it = model.find(got);
              ASSERT_NE(it, model.end()) << "dequeued a value not in the model: " << got;
              model.erase(it);
            } else {
              EXPECT_TRUE(model.empty()) << "dequeue failed with items present";
            }
            break;
          }
          default: {  // aborted dequeue: the element must reappear
            TransactionId t = app.Begin();
            q->Dequeue(app.MakeTx(t));
            app.Abort(t);
            break;
          }
        }
      }
      if (rng() % 2 == 0) {
        world.rm(1).log().ForceAll();
      }
      world.CrashNode(1);
    });
    world.RunApp(2, [&](Application&) {
      world.RecoverNode(1);
      q = world.Server<WeakQueueServer>(1, "q");
    });
    // Drain completely and compare against the model.
    std::multiset<std::int32_t> drained;
    world.RunApp(1, [&](Application& app) {
      for (;;) {
        std::int32_t got = 0;
        Status s = app.Transaction([&](const server::Tx& tx) {
          auto v = q->Dequeue(tx);
          if (!v.ok()) {
            return v.status();
          }
          got = v.value();
          return Status::kOk;
        });
        if (s != Status::kOk) {
          break;
        }
        drained.insert(got);
      }
    });
    EXPECT_EQ(drained, model) << "round " << round << " seed " << GetParam();
    model.clear();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakQueueFuzzTest, ::testing::Values(8u, 80u, 808u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace tabs
