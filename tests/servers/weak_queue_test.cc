// Weak queue server tests (paper Section 4.2): failure atomicity without
// serializability, gaps from aborted enqueues, garbage collection, tail
// recomputation after crashes.

#include "src/servers/weak_queue_server.h"

#include <gtest/gtest.h>

#include <set>

#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::WeakQueueServer;

class WeakQueueTest : public ::testing::Test {
 protected:
  WeakQueueTest() : world_(2) {
    q_ = world_.AddServerOf<WeakQueueServer>(1, "queue", 32u);
  }
  void Refresh() { q_ = world_.Server<WeakQueueServer>(1, "queue"); }

  World world_;
  WeakQueueServer* q_;
};

TEST_F(WeakQueueTest, EnqueueDequeueRoundTrip) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(q_->Enqueue(tx, 10), Status::kOk);
      EXPECT_EQ(q_->Enqueue(tx, 20), Status::kOk);
      return Status::kOk;
    });
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(q_->Dequeue(tx).value(), 10);
      EXPECT_EQ(q_->Dequeue(tx).value(), 20);
      EXPECT_EQ(q_->Dequeue(tx).status(), Status::kNotFound);
      return Status::kOk;
    });
  });
}

TEST_F(WeakQueueTest, IsQueueEmptyObservesState) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_TRUE(q_->IsQueueEmpty(tx).value());
      q_->Enqueue(tx, 1);
      EXPECT_FALSE(q_->IsQueueEmpty(tx).value());
      return Status::kOk;
    });
  });
}

TEST_F(WeakQueueTest, AbortedEnqueueLeavesInvisibleGap) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    q_->Enqueue(app.MakeTx(t), 99);
    app.Abort(t);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_TRUE(q_->IsQueueEmpty(tx).value());
      EXPECT_EQ(q_->Dequeue(tx).status(), Status::kNotFound);
      // The gap is real: the tail advanced past the aborted slot.
      EXPECT_GT(q_->tail(), q_->head());
      return Status::kOk;
    });
  });
}

TEST_F(WeakQueueTest, AbortedDequeueRestoresElement) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      q_->Enqueue(tx, 7);
      return Status::kOk;
    });
    TransactionId t = app.Begin();
    EXPECT_EQ(q_->Dequeue(app.MakeTx(t)).value(), 7);
    app.Abort(t);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(q_->Dequeue(tx).value(), 7);  // back in the queue
      return Status::kOk;
    });
  });
}

TEST_F(WeakQueueTest, DequeueSkipsElementsLockedByOthers) {
  // Weak-queue semantics: a dequeuer skips an element another transaction
  // is still enqueueing and takes the next one — out of FIFO order.
  world_.RunApp(1, [&](Application& app) {
    TransactionId t1 = app.Begin();
    q_->Enqueue(app.MakeTx(t1), 100);  // slot 0, still locked by t1
    app.Transaction([&](const server::Tx& tx) {
      q_->Enqueue(tx, 200);  // slot 1, committed
      return Status::kOk;
    });
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(q_->Dequeue(tx).value(), 200);  // skipped the in-flight 100
      return Status::kOk;
    });
    app.End(t1);
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(q_->Dequeue(tx).value(), 100);
      return Status::kOk;
    });
  });
}

TEST_F(WeakQueueTest, GarbageCollectionReclaimsSpace) {
  world_.RunApp(1, [&](Application& app) {
    // Fill and drain the queue repeatedly past its capacity: without the
    // enqueue-side garbage collection the head would never move and the
    // queue would report full.
    for (int round = 0; round < 5; ++round) {
      app.Transaction([&](const server::Tx& tx) {
        for (int i = 0; i < 16; ++i) {
          EXPECT_EQ(q_->Enqueue(tx, round * 100 + i), Status::kOk);
        }
        return Status::kOk;
      });
      app.Transaction([&](const server::Tx& tx) {
        for (int i = 0; i < 16; ++i) {
          EXPECT_TRUE(q_->Dequeue(tx).ok());
        }
        return Status::kOk;
      });
    }
  });
}

TEST_F(WeakQueueTest, FullQueueReportsConflict) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      for (std::uint32_t i = 0; i < q_->capacity(); ++i) {
        EXPECT_EQ(q_->Enqueue(tx, static_cast<std::int32_t>(i)), Status::kOk);
      }
      EXPECT_EQ(q_->Enqueue(tx, -1), Status::kConflict);
      return Status::kOk;
    });
  });
}

TEST_F(WeakQueueTest, TailRecomputedAfterCrash) {
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      q_->Enqueue(tx, 1);
      q_->Enqueue(tx, 2);
      q_->Enqueue(tx, 3);
      return Status::kOk;
    });
    app.Transaction([&](const server::Tx& tx) {
      q_->Dequeue(tx);
      return Status::kOk;
    });
    world_.CrashNode(1);
  });
  world_.RunApp(2, [&](Application& app) {
    world_.RecoverNode(1);
    Refresh();
    EXPECT_EQ(q_->tail(), 3u);  // recomputed from head + InUse bits
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      std::set<std::int32_t> got;
      got.insert(q_->Dequeue(tx).value());
      got.insert(q_->Dequeue(tx).value());
      EXPECT_EQ(got, (std::set<std::int32_t>{2, 3}));
      return Status::kOk;
    });
  });
}

TEST_F(WeakQueueTest, InFlightEnqueueDiesWithCrashAndLeavesGap) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    q_->Enqueue(app.MakeTx(t), 555);
    world_.rm(1).log().ForceAll();
    world_.CrashNode(1);
  });
  world_.RunApp(2, [&](Application& app) {
    auto stats = world_.RecoverNode(1);
    EXPECT_EQ(stats.losers.size(), 1u);
    Refresh();
  });
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_TRUE(q_->IsQueueEmpty(tx).value());
      return Status::kOk;
    });
  });
}

TEST_F(WeakQueueTest, ConcurrentProducersAndConsumersConserveItems) {
  constexpr int kPerProducer = 10;
  std::multiset<std::int32_t> consumed;
  for (int p = 0; p < 3; ++p) {
    world_.SpawnApp(1, "producer", [&, p](Application& app) {
      for (int i = 0; i < kPerProducer; ++i) {
        app.Transaction([&](const server::Tx& tx) {
          return q_->Enqueue(tx, p * 1000 + i) == Status::kOk ? Status::kOk
                                                              : Status::kConflict;
        });
      }
    }, p * 1000);
  }
  world_.SpawnApp(1, "consumer", [&](Application& app) {
    int drained = 0;
    int idle_rounds = 0;
    while (drained < 3 * kPerProducer && idle_rounds < 100) {
      Status s = app.Transaction([&](const server::Tx& tx) {
        auto v = q_->Dequeue(tx);
        if (!v.ok()) {
          return v.status();
        }
        consumed.insert(v.value());
        return Status::kOk;
      });
      if (s == Status::kOk) {
        ++drained;
        idle_rounds = 0;
      } else {
        ++idle_rounds;
        world_.scheduler().Charge(50'000);
        world_.scheduler().Yield();
      }
    }
  }, 500);
  EXPECT_EQ(world_.Drain(), 0);
  EXPECT_EQ(consumed.size(), 3u * kPerProducer);
}

}  // namespace
}  // namespace tabs
