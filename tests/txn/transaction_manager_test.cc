// Transaction Manager unit tests: identifier allocation, transaction tree,
// state machine, outcome queries, and the active-transaction table.

#include "src/txn/transaction_manager.h"

#include <gtest/gtest.h>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using txn::TxnState;

class TmTest : public ::testing::Test {
 protected:
  TmTest() : world_(2) {
    arr_ = world_.AddServerOf<servers::ArrayServer>(1, "arr", 16u);
  }

  World world_;
  servers::ArrayServer* arr_;
};

TEST_F(TmTest, TidsAreUniqueAndNodeTagged) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId a = app.Begin();
    TransactionId b = app.Begin();
    EXPECT_NE(a, b);
    EXPECT_EQ(a.node, 1u);
    EXPECT_LT(a.sequence, b.sequence);
    app.Abort(a);
    app.Abort(b);
  });
}

TEST_F(TmTest, SequencesSurviveCrashWithoutReuse) {
  std::uint64_t before = 0;
  world_.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      arr_->SetCell(tx, 0, 1);
      return Status::kOk;
    });
    before = app.Begin().sequence;
    world_.CrashNode(1);
  });
  world_.RunApp(2, [&](Application&) { world_.RecoverNode(1); });
  world_.RunApp(1, [&](Application& app) {
    // The recovered TM rebuilt its sequence floor from the log: identifiers
    // of logged transactions are never reissued.
    TransactionId fresh = app.Begin();
    EXPECT_GT(fresh.sequence, 1u);
    app.Abort(fresh);
  });
  (void)before;
}

TEST_F(TmTest, StateTransitions) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    EXPECT_EQ(world_.tm(1).StateOf(t), TxnState::kActive);
    arr_->SetCell(app.MakeTx(t), 0, 5);
    EXPECT_EQ(app.End(t), Status::kOk);
    EXPECT_EQ(world_.tm(1).StateOf(t), TxnState::kCommitted);
    TransactionId u = app.Begin();
    app.Abort(u);
    EXPECT_EQ(world_.tm(1).StateOf(u), TxnState::kAborted);
    EXPECT_TRUE(app.TransactionIsAborted(u));
    EXPECT_FALSE(app.TransactionIsAborted(t));
  });
}

TEST_F(TmTest, TopOfResolvesNestedTree) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId top = app.Begin();
    TransactionId child = app.Begin(top);
    TransactionId grandchild = app.Begin(child);
    EXPECT_EQ(world_.tm(1).TopOf(grandchild), top);
    EXPECT_EQ(world_.tm(1).TopOf(child), top);
    EXPECT_EQ(world_.tm(1).TopOf(top), top);
    app.Abort(top);  // aborts the whole tree
    EXPECT_TRUE(app.TransactionIsAborted(grandchild));
  });
}

TEST_F(TmTest, DeepNestingCommitsThroughAllLevels) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId top = app.Begin();
    TransactionId cur = top;
    for (int depth = 0; depth < 5; ++depth) {
      cur = app.Begin(cur);
      arr_->SetCell(app.MakeTx(cur), static_cast<std::uint32_t>(depth), depth + 1);
    }
    // End only the top: open descendants commit with their parent.
    EXPECT_EQ(app.End(top), Status::kOk);
    app.Transaction([&](const server::Tx& tx) {
      for (int depth = 0; depth < 5; ++depth) {
        EXPECT_EQ(arr_->GetCell(tx, static_cast<std::uint32_t>(depth)).value(), depth + 1);
      }
      return Status::kOk;
    });
  });
}

TEST_F(TmTest, SubtransactionCannotOutliveParentCommitIndependently) {
  // "Subtransactions may not be committed before their parents": ending a
  // child merely merges; its effects are not durable until the top ends.
  world_.RunApp(1, [&](Application& app) {
    TransactionId top = app.Begin();
    TransactionId child = app.Begin(top);
    arr_->SetCell(app.MakeTx(child), 0, 42);
    EXPECT_EQ(app.End(child), Status::kOk);  // tentative
    // Another transaction still cannot see (or touch) the child's write.
    TransactionId probe = app.Begin();
    EXPECT_EQ(arr_->GetCell(app.MakeTx(probe), 0).status(), Status::kTimeout);
    app.Abort(probe);
    app.Abort(top);  // and the whole tree can still vanish
    app.Transaction([&](const server::Tx& tx) {
      EXPECT_EQ(arr_->GetCell(tx, 0).value(), 0);
      return Status::kOk;
    });
  });
}

TEST_F(TmTest, ActiveTransactionTable) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId a = app.Begin();
    arr_->SetCell(app.MakeTx(a), 0, 1);
    TransactionId b = app.Begin();
    auto table = world_.tm(1).ActiveTransactions();
    ASSERT_EQ(table.size(), 2u);
    // The writer's first-LSN is recorded (it pins log space).
    bool found_writer = false;
    for (const auto& at : table) {
      if (at.owner == a) {
        found_writer = true;
        EXPECT_NE(at.first_lsn, kNullLsn);
      }
    }
    EXPECT_TRUE(found_writer);
    app.Abort(a);
    app.Abort(b);
    EXPECT_TRUE(world_.tm(1).ActiveTransactions().empty());
  });
}

TEST_F(TmTest, EndOfUnknownTransactionReportsAborted) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId bogus{1, 999999};
    EXPECT_EQ(app.End(bogus), Status::kAborted);
  });
}

TEST_F(TmTest, DoubleAbortIsHarmless) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    arr_->SetCell(app.MakeTx(t), 0, 7);
    app.Abort(t);
    app.Abort(t);  // idempotent
    EXPECT_TRUE(app.TransactionIsAborted(t));
  });
}

TEST_F(TmTest, QueryCommittedPresumesAbort) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId unknown{1, 424242};
    EXPECT_FALSE(world_.tm(1).QueryCommitted(unknown));
    TransactionId t = app.Begin();
    arr_->SetCell(app.MakeTx(t), 0, 1);
    app.End(t);
    EXPECT_TRUE(world_.tm(1).QueryCommitted(t));
  });
}

}  // namespace
}  // namespace tabs
