// Crash-recovery tests: value logging (single backward pass), operation
// logging (three passes, page-sequence-number guard), abort processing with
// compensation, checkpoints and reclamation.

#include "src/recovery/recovery_manager.h"

#include <gtest/gtest.h>

#include <map>

#include "src/kernel/node.h"

namespace tabs::recovery {
namespace {

using log::LogRecord;
using log::RecordType;

constexpr SegmentId kSeg = 1;
constexpr char kServer[] = "srv";

// A stand-in for the Transaction Manager's recovery side.
class TestOutcomes : public TxnOutcomeSource {
 public:
  void ObserveTxnRecord(const LogRecord& rec) override {
    switch (rec.type) {
      case RecordType::kTxnCommit:
        state_[rec.top] = TxnOutcome::kCommitted;
        break;
      case RecordType::kTxnAbort:
        state_[rec.top] = TxnOutcome::kAborted;
        break;
      case RecordType::kTxnPrepare:
        if (!state_.contains(rec.top)) {
          state_[rec.top] = TxnOutcome::kPrepared;
        }
        break;
      default:
        break;
    }
  }
  TxnOutcome OutcomeOf(const TransactionId& top) override {
    auto it = state_.find(top);
    return it == state_.end() ? TxnOutcome::kActive : it->second;
  }

 private:
  std::map<TransactionId, TxnOutcome> state_;
};

// One volatile "epoch" of a node: everything a crash destroys.
struct Epoch {
  Epoch(kernel::Node& node, PageNumber pages = 16, size_t frames = 8)
      : rm(node), seg(node.substrate(), node.disk(), kSeg, pages, frames) {
    rm.RegisterSegment(kServer, &seg);
  }
  RecoveryManager rm;
  kernel::RecoverableSegment seg;
};

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest()
      : substrate_(sched_, sim::CostModel::Baseline(), sim::ArchitectureModel::Prototype()),
        node_(1, substrate_) {}

  void RunInTask(std::function<void()> fn) {
    sched_.Spawn("test", 1, 0, std::move(fn));
    ASSERT_EQ(sched_.Run(), 0);
  }

  // Server-library-shaped write: pin, log old/new (which applies), unpin.
  static void WriteValue(Epoch& e, const TransactionId& tid, const ObjectId& oid,
                         Bytes new_value) {
    e.seg.Pin(oid);
    Bytes old_value = e.seg.Read(oid);
    e.rm.LogValue(tid, tid, kServer, oid, std::move(old_value), std::move(new_value));
    e.seg.Unpin(oid);
  }

  static void Commit(Epoch& e, const TransactionId& tid) {
    LogRecord rec;
    rec.type = RecordType::kTxnCommit;
    rec.owner = tid;
    rec.top = tid;
    e.rm.log().Append(std::move(rec));
    e.rm.log().ForceAll();
    e.rm.ForgetTransaction(tid);
  }

  sim::Scheduler sched_;
  sim::Substrate substrate_;
  kernel::Node node_;
};

TEST_F(RecoveryTest, CommittedValueSurvivesCrash) {
  ObjectId oid{kSeg, 0, 4};
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch before(node_);
    WriteValue(before, t, oid, {1, 2, 3, 4});
    Commit(before, t);
    // Crash: volatile frames never reached disk.
    Epoch after(node_);
    TestOutcomes outcomes;
    RecoveryStats stats = after.rm.Recover(outcomes);
    EXPECT_EQ(stats.passes, 1);  // value-only log: single pass
    EXPECT_EQ(after.seg.Read(oid), (Bytes{1, 2, 3, 4}));
    EXPECT_TRUE(stats.losers.empty());
  });
}

TEST_F(RecoveryTest, UncommittedValueRolledBack) {
  ObjectId oid{kSeg, 0, 4};
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch before(node_);
    WriteValue(before, t, oid, {7, 7, 7, 7});
    before.rm.log().ForceAll();  // records durable, but no commit record
    before.seg.FlushAll();       // dirty page even reached the disk
    Epoch after(node_);
    TestOutcomes outcomes;
    RecoveryStats stats = after.rm.Recover(outcomes);
    EXPECT_EQ(after.seg.Read(oid), (Bytes{0, 0, 0, 0}));
    ASSERT_EQ(stats.losers.size(), 1u);
    EXPECT_EQ(stats.losers[0], t);
  });
}

TEST_F(RecoveryTest, UnforcedCommittedUpdatesAreSimplyGone) {
  // No force, no flush: WAL means the disk was never touched, so recovery
  // has nothing to do and the transaction never happened.
  ObjectId oid{kSeg, 0, 4};
  TransactionId t{1, 1};
  RunInTask([&] {
    {
      Epoch before(node_);
      WriteValue(before, t, oid, {9, 9, 9, 9});
      // commit record appended but NOT forced:
      LogRecord rec;
      rec.type = RecordType::kTxnCommit;
      rec.owner = t;
      rec.top = t;
      before.rm.log().Append(std::move(rec));
    }
    Epoch after(node_);
    TestOutcomes outcomes;
    after.rm.Recover(outcomes);
    EXPECT_EQ(after.seg.Read(oid), (Bytes{0, 0, 0, 0}));
  });
}

TEST_F(RecoveryTest, InterleavedWinnersAndLosers) {
  ObjectId a{kSeg, 0, 4}, b{kSeg, 4, 4}, c{kSeg, 8, 4};
  TransactionId t1{1, 1}, t2{1, 2}, t3{1, 3};
  RunInTask([&] {
    Epoch before(node_);
    WriteValue(before, t1, a, {1, 1, 1, 1});
    WriteValue(before, t2, b, {2, 2, 2, 2});
    WriteValue(before, t1, c, {3, 3, 3, 3});
    Commit(before, t1);
    WriteValue(before, t3, a, {4, 4, 4, 4});  // t3 overwrites committed t1 data
    before.rm.log().ForceAll();
    before.seg.FlushAll();
    Epoch after(node_);
    TestOutcomes outcomes;
    after.rm.Recover(outcomes);
    EXPECT_EQ(after.seg.Read(a), (Bytes{1, 1, 1, 1}));  // t3 undone back to t1's commit
    EXPECT_EQ(after.seg.Read(b), (Bytes{0, 0, 0, 0}));  // t2 never committed
    EXPECT_EQ(after.seg.Read(c), (Bytes{3, 3, 3, 3}));  // t1 committed
  });
}

TEST_F(RecoveryTest, MultiRecordLoserUnwindsToOldest) {
  ObjectId oid{kSeg, 0, 4};
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch before(node_);
    WriteValue(before, t, oid, {1, 0, 0, 0});
    WriteValue(before, t, oid, {2, 0, 0, 0});
    WriteValue(before, t, oid, {3, 0, 0, 0});
    before.rm.log().ForceAll();
    before.seg.FlushAll();
    Epoch after(node_);
    TestOutcomes outcomes;
    after.rm.Recover(outcomes);
    EXPECT_EQ(after.seg.Read(oid), (Bytes{0, 0, 0, 0}));
  });
}

TEST_F(RecoveryTest, NormalAbortRestoresAndCompensates) {
  ObjectId oid{kSeg, 0, 4};
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch e(node_);
    WriteValue(e, t, oid, {5, 5, 5, 5});
    WriteValue(e, t, oid, {6, 6, 6, 6});
    e.rm.UndoTransaction(t, t);
    EXPECT_EQ(e.seg.Read(oid), (Bytes{0, 0, 0, 0}));
  });
}

TEST_F(RecoveryTest, CrashAfterDurableAbortStaysRolledBack) {
  ObjectId oid{kSeg, 0, 4};
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch before(node_);
    WriteValue(before, t, oid, {5, 5, 5, 5});
    before.rm.UndoTransaction(t, t);
    LogRecord rec;
    rec.type = RecordType::kTxnAbort;
    rec.owner = t;
    rec.top = t;
    before.rm.log().Append(std::move(rec));
    before.rm.log().ForceAll();
    before.seg.FlushAll();
    Epoch after(node_);
    TestOutcomes outcomes;
    after.rm.Recover(outcomes);
    EXPECT_EQ(after.seg.Read(oid), (Bytes{0, 0, 0, 0}));
  });
}

TEST_F(RecoveryTest, AbortedSubtransactionInsideCommittedParent) {
  ObjectId a{kSeg, 0, 4}, b{kSeg, 4, 4};
  TransactionId parent{1, 1}, child{1, 2};
  RunInTask([&] {
    Epoch e(node_);
    // Parent writes a; child writes b then aborts independently; parent
    // commits. b must stay rolled back, a must survive.
    e.seg.Pin(a);
    e.rm.LogValue(parent, parent, kServer, a, e.seg.Read(a), {1, 1, 1, 1});
    e.seg.Unpin(a);
    e.seg.Pin(b);
    e.rm.LogValue(child, parent, kServer, b, e.seg.Read(b), {2, 2, 2, 2});
    e.seg.Unpin(b);
    e.rm.UndoTransaction(child, parent);  // subtransaction aborts alone
    Commit(e, parent);
    e.rm.log().ForceAll();
    Epoch after(node_);
    TestOutcomes outcomes;
    after.rm.Recover(outcomes);
    EXPECT_EQ(after.seg.Read(a), (Bytes{1, 1, 1, 1}));
    EXPECT_EQ(after.seg.Read(b), (Bytes{0, 0, 0, 0}));
  });
}

TEST_F(RecoveryTest, CommittedSubtransactionRollsBackWithAbortedParent) {
  ObjectId b{kSeg, 4, 4};
  TransactionId parent{1, 1}, child{1, 2};
  RunInTask([&] {
    Epoch e(node_);
    e.seg.Pin(b);
    e.rm.LogValue(child, parent, kServer, b, e.seg.Read(b), {2, 2, 2, 2});
    e.seg.Unpin(b);
    e.rm.MergeChild(child, parent);  // subtransaction committed into parent
    e.rm.UndoTransaction(parent, parent);  // ...then the parent aborts
    EXPECT_EQ(e.seg.Read(b), (Bytes{0, 0, 0, 0}));
  });
}

TEST_F(RecoveryTest, PreparedTransactionIsInDoubtAndKeepsValues) {
  ObjectId oid{kSeg, 0, 4};
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch before(node_);
    WriteValue(before, t, oid, {8, 8, 8, 8});
    LogRecord prep;
    prep.type = RecordType::kTxnPrepare;
    prep.owner = t;
    prep.top = t;
    before.rm.log().Append(std::move(prep));
    before.rm.log().ForceAll();
    Epoch after(node_);
    TestOutcomes outcomes;
    RecoveryStats stats = after.rm.Recover(outcomes);
    ASSERT_EQ(stats.in_doubt.size(), 1u);
    EXPECT_EQ(stats.in_doubt[0], t);
    EXPECT_EQ(after.seg.Read(oid), (Bytes{8, 8, 8, 8}));
    // Coordinator later says abort: the rebuilt undo list unwinds it.
    after.rm.UndoTransaction(t, t);
    EXPECT_EQ(after.seg.Read(oid), (Bytes{0, 0, 0, 0}));
  });
}

// ---------- operation logging ----------

// A tiny op-logged server: one u64 counter at offset 0, ops "add"/"sub".
struct CounterServer {
  explicit CounterServer(Epoch& e) : epoch(e) {
    OperationHooks hooks;
    hooks.apply = [this](const std::string& op, const Bytes& args, Lsn lsn) {
      Apply(op, args, lsn);
    };
    epoch.rm.RegisterOperationHooks(kServer, hooks);
  }

  std::uint64_t Get() {
    Bytes v = epoch.seg.Read(Oid());
    std::uint64_t x;
    memcpy(&x, v.data(), 8);
    return x;
  }

  void Apply(const std::string& op, const Bytes& args, Lsn lsn) {
    std::int64_t delta;
    memcpy(&delta, args.data(), 8);
    if (op == "sub") {
      delta = -delta;
    }
    std::uint64_t cur = Get();
    cur += static_cast<std::uint64_t>(delta);
    Bytes nv(8);
    memcpy(nv.data(), &cur, 8);
    epoch.seg.Pin(Oid());
    epoch.seg.Write(Oid(), nv, lsn);
    epoch.seg.Unpin(Oid());
  }

  void Add(const TransactionId& tid, std::int64_t delta) {
    Bytes args(8);
    memcpy(args.data(), &delta, 8);
    epoch.rm.LogOperation(tid, tid, kServer, "add", args, "sub", args, {{kSeg, 0}});
  }

  static ObjectId Oid() { return {kSeg, 0, 8}; }
  Epoch& epoch;
};

TEST_F(RecoveryTest, OperationLoggingForwardAndAbort) {
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch e(node_);
    CounterServer ctr(e);
    ctr.Add(t, 10);
    ctr.Add(t, 5);
    EXPECT_EQ(ctr.Get(), 15u);
    e.rm.UndoTransaction(t, t);
    EXPECT_EQ(ctr.Get(), 0u);
  });
}

TEST_F(RecoveryTest, OperationRedoAfterCrashUsesThreePasses) {
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch before(node_);
    CounterServer ctr(before);
    ctr.Add(t, 10);
    ctr.Add(t, 7);
    Commit(before, t);
    // Crash without flushing: the counter page on disk is stale.
    Epoch after(node_);
    CounterServer ctr2(after);
    TestOutcomes outcomes;
    RecoveryStats stats = after.rm.Recover(outcomes);
    EXPECT_EQ(stats.passes, 3);
    EXPECT_EQ(stats.operations_redone, 2);
    EXPECT_EQ(ctr2.Get(), 17u);
  });
}

TEST_F(RecoveryTest, SequenceNumberGuardSuppressesDoubleRedo) {
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch before(node_);
    CounterServer ctr(before);
    ctr.Add(t, 10);
    Commit(before, t);
    before.seg.FlushAll();  // the page reaches disk stamped with its LSN
    Epoch after(node_);
    CounterServer ctr2(after);
    TestOutcomes outcomes;
    RecoveryStats stats = after.rm.Recover(outcomes);
    EXPECT_EQ(stats.operations_redone, 0);  // guard: page seqno >= record LSN
    EXPECT_EQ(ctr2.Get(), 10u);             // and the value is already there
  });
}

TEST_F(RecoveryTest, OperationLoserUndoneAtRecovery) {
  TransactionId winner{1, 1}, loser{1, 2};
  RunInTask([&] {
    Epoch before(node_);
    CounterServer ctr(before);
    ctr.Add(winner, 100);
    Commit(before, winner);
    ctr.Add(loser, 11);
    before.rm.log().ForceAll();
    before.seg.FlushAll();
    Epoch after(node_);
    CounterServer ctr2(after);
    TestOutcomes outcomes;
    RecoveryStats stats = after.rm.Recover(outcomes);
    EXPECT_EQ(stats.operations_undone, 1);
    EXPECT_EQ(ctr2.Get(), 100u);
  });
}

TEST_F(RecoveryTest, CrashDuringAbortDoesNotDoubleUndo) {
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch before(node_);
    CounterServer ctr(before);
    ctr.Add(t, 10);
    ctr.Add(t, 5);
    before.rm.log().ForceAll();
    // Abort proceeds: both compensations logged and applied...
    before.rm.UndoTransaction(t, t);
    before.rm.log().ForceAll();
    before.seg.FlushAll();
    // ...but the abort record never made it. Recovery sees a loser whose
    // compensations are durable; undo_next pointers prevent re-undoing.
    Epoch after(node_);
    CounterServer ctr2(after);
    TestOutcomes outcomes;
    RecoveryStats stats = after.rm.Recover(outcomes);
    EXPECT_EQ(stats.operations_undone, 0);
    EXPECT_EQ(ctr2.Get(), 0u);
  });
}

TEST_F(RecoveryTest, PartialAbortBeforeCrashFinishesAtRecovery) {
  TransactionId t{1, 1};
  RunInTask([&] {
    Epoch before(node_);
    CounterServer ctr(before);
    ctr.Add(t, 10);
    ctr.Add(t, 5);
    ctr.Add(t, 3);
    before.rm.log().ForceAll();
    before.seg.FlushAll();  // the crash-point disk image: counter = 18
    // Snapshot the disk as of this moment (a real crash cannot leave the
    // disk ahead of the stable log — the WAL gate forbids it).
    kernel::Node scratch(1, substrate_);
    scratch.disk().EnsureSegment(kSeg, 16);
    for (PageNumber p = 0; p < 16; ++p) {
      const auto& page = node_.disk().PeekPage({kSeg, p});
      scratch.disk().WritePage({kSeg, p}, page.data.data(), page.sequence_number);
    }
    // Run the abort; only its FIRST compensation record becomes durable
    // before the "crash" (we rebuild a byte-prefix of the log).
    Lsn pre_abort_end = before.rm.log().last_lsn();
    before.rm.UndoTransaction(t, t);
    before.rm.log().ForceAll();
    Lsn first_comp = before.rm.log().NextLsn(pre_abort_end);
    ASSERT_NE(first_comp, kNullLsn);
    Lsn second_comp = before.rm.log().NextLsn(first_comp);
    ASSERT_NE(second_comp, kNullLsn);
    auto& dev = node_.stable_log();
    Bytes prefix(dev.Read(0, second_comp - 1).begin(), dev.Read(0, second_comp - 1).end());
    scratch.stable_log().Append(prefix);
    RecoveryManager rm2(scratch);
    kernel::RecoverableSegment seg2(substrate_, scratch.disk(), kSeg, 16, 8);
    rm2.RegisterSegment(kServer, &seg2);
    struct MiniCounter {
      kernel::RecoverableSegment& seg;
      std::uint64_t Get() {
        Bytes v = seg.Read({kSeg, 0, 8});
        std::uint64_t x;
        memcpy(&x, v.data(), 8);
        return x;
      }
    } mini{seg2};
    OperationHooks hooks;
    hooks.apply = [&](const std::string& op, const Bytes& args, Lsn lsn) {
      std::int64_t delta;
      memcpy(&delta, args.data(), 8);
      if (op == "sub") {
        delta = -delta;
      }
      std::uint64_t cur = mini.Get();
      cur += static_cast<std::uint64_t>(delta);
      Bytes nv(8);
      memcpy(nv.data(), &cur, 8);
      seg2.Pin({kSeg, 0, 8});
      seg2.Write({kSeg, 0, 8}, nv, lsn);
      seg2.Unpin({kSeg, 0, 8});
    };
    rm2.RegisterOperationHooks(kServer, hooks);
    TestOutcomes outcomes;
    RecoveryStats stats = rm2.Recover(outcomes);
    // The add of 3 was compensated before the crash (its compensation is
    // redone); only the adds of 5 and 10 need fresh undo.
    EXPECT_EQ(stats.operations_redone, 1);
    EXPECT_EQ(stats.operations_undone, 2);
    EXPECT_EQ(mini.Get(), 0u);
  });
}

TEST_F(RecoveryTest, CheckpointAndReclaimShrinkLogButPreserveCorrectness) {
  ObjectId oid{kSeg, 0, 4};
  TransactionId t1{1, 1}, t2{1, 2};
  RunInTask([&] {
    Epoch before(node_);
    for (int i = 0; i < 50; ++i) {
      WriteValue(before, t1, oid, {std::uint8_t(i), 0, 0, 0});
    }
    Commit(before, t1);
    std::uint64_t in_use = before.rm.StableLogBytesInUse();
    before.rm.Reclaim({});  // no active transactions: nearly everything goes
    EXPECT_LT(before.rm.StableLogBytesInUse(), in_use / 4);
    // Post-reclaim updates still recover.
    WriteValue(before, t2, oid, {99, 0, 0, 0});
    Commit(before, t2);
    Epoch after(node_);
    TestOutcomes outcomes;
    after.rm.Recover(outcomes);
    EXPECT_EQ(after.seg.Read(oid), (Bytes{99, 0, 0, 0}));
  });
}

TEST_F(RecoveryTest, ReclaimRespectsActiveTransactions) {
  ObjectId a{kSeg, 0, 4}, b{kSeg, 4, 4};
  TransactionId active{1, 1}, done{1, 2};
  RunInTask([&] {
    Epoch e(node_);
    e.seg.Pin(a);
    Lsn first = e.rm.LogValue(active, active, kServer, a, e.seg.Read(a), {1, 1, 1, 1});
    e.seg.Unpin(a);
    WriteValue(e, done, b, {2, 2, 2, 2});
    Commit(e, done);
    RecoveryManager::ActiveTxn at;
    at.owner = active;
    at.top = active;
    at.first_lsn = first;
    e.rm.Reclaim({at});
    // The active transaction's first record must still be readable (it may
    // need to be undone).
    EXPECT_TRUE(e.rm.log().ReadRecord(first).has_value());
    e.rm.UndoTransaction(active, active);
    EXPECT_EQ(e.seg.Read(a), (Bytes{0, 0, 0, 0}));
  });
}

}  // namespace
}  // namespace tabs::recovery
