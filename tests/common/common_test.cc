// Unit tests for the common layer: identifiers, Result<T>, and the byte
// serialization the log and messages are built on.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/common/types.h"

namespace tabs {
namespace {

TEST(TypesTest, NullTransactionIdentity) {
  EXPECT_TRUE(kNullTransaction.IsNull());
  TransactionId t{1, 1};
  EXPECT_FALSE(t.IsNull());
  EXPECT_NE(t, kNullTransaction);
}

TEST(TypesTest, ObjectIdPageArithmetic) {
  ObjectId within{1, 100, 50};
  EXPECT_EQ(within.FirstPage(), 0u);
  EXPECT_EQ(within.LastPage(), 0u);
  ObjectId spanning{1, 500, 50};
  EXPECT_EQ(spanning.FirstPage(), 0u);
  EXPECT_EQ(spanning.LastPage(), 1u);
  ObjectId exact_end{1, kPageSize - 4, 4};
  EXPECT_EQ(exact_end.LastPage(), 0u);
  ObjectId next_page{1, kPageSize, 4};
  EXPECT_EQ(next_page.FirstPage(), 1u);
}

TEST(TypesTest, OrderingAndHashing) {
  TransactionId a{1, 5};
  TransactionId b{1, 6};
  TransactionId c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(std::hash<TransactionId>()(a), std::hash<TransactionId>()(b));
  EXPECT_EQ(std::hash<TransactionId>()(a), std::hash<TransactionId>()(TransactionId{1, 5}));
}

TEST(TypesTest, ToStringFormats) {
  EXPECT_EQ(ToString(TransactionId{3, 9}), "T(3.9)");
  EXPECT_EQ(ToString(kNullTransaction), "T(null)");
  EXPECT_EQ(ToString(ObjectId{2, 64, 8}), "obj(2:64+8)");
  EXPECT_EQ(ToString(PageId{2, 7}), "page(2:7)");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.status(), Status::kOk);
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(-1), 42);

  Result<int> err(Status::kNotFound);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status(), Status::kNotFound);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, StatusNamesCoverEveryCode) {
  for (Status s : {Status::kOk, Status::kAborted, Status::kTimeout, Status::kNotFound,
                   Status::kOutOfRange, Status::kNodeDown, Status::kMessageLost,
                   Status::kVoteNo, Status::kConflict, Status::kNoQuorum, Status::kInternal}) {
    EXPECT_STRNE(StatusName(s), "UNKNOWN");
  }
}

TEST(BytesTest, ScalarRoundTrip) {
  ByteWriter w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, StringBlobTidOidRoundTrip) {
  ByteWriter w;
  w.Str("hello");
  w.Blob(Bytes{1, 2, 3});
  w.Tid({7, 99});
  w.Oid({2, 1024, 16});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.Tid(), (TransactionId{7, 99}));
  EXPECT_EQ(r.Oid(), (ObjectId{2, 1024, 16}));
  EXPECT_TRUE(r.ok());
}

TEST(BytesTest, EmptyStringAndBlob) {
  ByteWriter w;
  w.Str("");
  w.Blob({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.Blob().empty());
  EXPECT_TRUE(r.ok());
}

TEST(BytesTest, TruncatedInputFailsClosed) {
  ByteWriter w;
  w.U64(1);
  Bytes data = w.Take();
  data.resize(4);
  ByteReader r(data);
  r.U64();
  EXPECT_FALSE(r.ok());
  // Further reads stay failed and return zero values, never crash.
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, OversizedLengthPrefixFailsClosed) {
  ByteWriter w;
  w.U32(1'000'000);  // claims a huge string follows
  ByteReader r(w.bytes());
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace tabs
