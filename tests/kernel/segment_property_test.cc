// Property sweeps for recoverable segments: random read/write traffic under
// varying buffer-pool pressure must preserve contents exactly, and the
// write-ahead invariant — no page reaches non-volatile storage before the
// log records covering it are stable — must hold at every page-out.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "src/kernel/recoverable_segment.h"
#include "src/log/log_manager.h"
#include "src/sim/sim_disk.h"

namespace tabs::kernel {
namespace {

struct SweepParam {
  size_t frames;
  unsigned seed;
};

class SegmentPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SegmentPropertyTest, RandomTrafficUnderPoolPressureMatchesModel) {
  const SweepParam param = GetParam();
  sim::Scheduler sched;
  sim::Substrate substrate(sched, sim::CostModel::Baseline(),
                           sim::ArchitectureModel::Prototype());
  sim::SimDisk disk(substrate);
  constexpr PageNumber kPages = 24;
  RecoverableSegment seg(substrate, disk, 1, kPages, param.frames);

  std::mt19937 rng(param.seed);
  std::map<std::uint32_t, std::uint8_t> model;  // offset -> byte

  sched.Spawn("traffic", 1, 0, [&] {
    Lsn lsn = 1;
    for (int step = 0; step < 600; ++step) {
      std::uint32_t offset = rng() % (kPages * kPageSize - 8);
      std::uint32_t len = 1 + rng() % 8;
      ObjectId oid{1, offset, len};
      if (rng() % 2 == 0) {
        Bytes value(len);
        for (auto& b : value) {
          b = static_cast<std::uint8_t>(rng());
        }
        seg.Pin(oid);
        seg.Write(oid, value, lsn++);
        seg.Unpin(oid);
        for (std::uint32_t i = 0; i < len; ++i) {
          model[offset + i] = value[i];
        }
      } else {
        Bytes got = seg.Read(oid);
        for (std::uint32_t i = 0; i < len; ++i) {
          std::uint8_t expect = model.contains(offset + i) ? model[offset + i] : 0;
          ASSERT_EQ(got[i], expect)
              << "offset " << offset + i << " frames " << param.frames;
        }
      }
      ASSERT_LE(seg.resident_pages(), param.frames);
    }
    // Flush and verify straight from disk images.
    seg.FlushAll();
    for (auto& [offset, byte] : model) {
      PageId page{1, offset / kPageSize};
      ASSERT_EQ(disk.PeekPage(page).data[offset % kPageSize], byte);
    }
  });
  ASSERT_EQ(sched.Run(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    PoolSizes, SegmentPropertyTest,
    ::testing::Values(SweepParam{2, 1}, SweepParam{3, 2}, SweepParam{6, 3},
                      SweepParam{12, 4}, SweepParam{24, 5}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "frames" + std::to_string(info.param.frames) + "_seed" +
             std::to_string(info.param.seed);
    });

// The write-ahead invariant, checked at the source: every page-out's gate
// sees the log forced through the page's last LSN before the disk write.
TEST(WriteAheadInvariantTest, NoPageOutPrecedesItsLogRecords) {
  sim::Scheduler sched;
  sim::Substrate substrate(sched, sim::CostModel::Baseline(),
                           sim::ArchitectureModel::Prototype());
  sim::SimDisk disk(substrate);
  log::StableLogDevice device;
  log::LogManager log(substrate, device);

  class Gate : public WriteAheadHooks {
   public:
    explicit Gate(log::LogManager& log) : log_(log) {}
    void OnFirstDirty(PageId, Lsn) override {}
    std::uint64_t BeforePageWrite(PageId page, Lsn last_lsn) override {
      log_.Force(last_lsn);
      EXPECT_GE(log_.durable_lsn(), last_lsn) << "WAL violated at " << ToString(page);
      ++write_backs;
      return last_lsn;
    }
    void AfterPageWrite(PageId, bool ok) override { EXPECT_TRUE(ok); }
    int write_backs = 0;

   private:
    log::LogManager& log_;
  };

  RecoverableSegment seg(substrate, disk, 1, 32, 4);
  Gate gate(log);
  seg.SetHooks(&gate);

  sched.Spawn("writer", 1, 0, [&] {
    std::mt19937 rng(99);
    TransactionId tid{1, 1};
    for (int i = 0; i < 200; ++i) {
      ObjectId oid{1, static_cast<std::uint32_t>((rng() % 32) * kPageSize + rng() % 64), 4};
      log::LogRecord rec;
      rec.type = log::RecordType::kValueUpdate;
      rec.owner = tid;
      rec.top = tid;
      rec.server = "s";
      rec.oid = oid;
      rec.old_value = seg.Read(oid);
      rec.new_value = Bytes{1, 2, 3, 4};
      Lsn lsn = log.Append(rec);
      seg.Pin(oid);
      seg.Write(oid, rec.new_value, lsn);
      seg.Unpin(oid);
      // Occasionally force; the tiny pool forces evictions regardless, and
      // every eviction must gate on the log.
      if (i % 17 == 0) {
        log.ForceAll();
      }
    }
    seg.FlushAll();
  });
  ASSERT_EQ(sched.Run(), 0);
  EXPECT_GT(gate.write_backs, 10);
}

}  // namespace
}  // namespace tabs::kernel
