#include "src/kernel/recoverable_segment.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/sim/sim_disk.h"

namespace tabs::kernel {
namespace {

using sim::CostModel;
using sim::Primitive;

// Records the kernel->Recovery Manager WAL messages for inspection.
class RecordingHooks : public WriteAheadHooks {
 public:
  void OnFirstDirty(PageId page, Lsn recovery_lsn) override {
    first_dirty.emplace_back(page, recovery_lsn);
  }
  std::uint64_t BeforePageWrite(PageId page, Lsn last_lsn) override {
    before_write.emplace_back(page, last_lsn);
    return last_lsn;  // stamp the page with its last LSN
  }
  void AfterPageWrite(PageId page, bool ok) override { after_write.emplace_back(page, ok); }

  std::vector<std::pair<PageId, Lsn>> first_dirty;
  std::vector<std::pair<PageId, Lsn>> before_write;
  std::vector<std::pair<PageId, bool>> after_write;
};

class SegmentTest : public ::testing::Test {
 protected:
  SegmentTest()
      : substrate_(sched_, CostModel::Baseline(), sim::ArchitectureModel::Prototype()),
        disk_(substrate_) {}

  void RunInTask(std::function<void()> fn) {
    sched_.Spawn("test", 1, 0, std::move(fn));
    ASSERT_EQ(sched_.Run(), 0);
  }

  sim::Scheduler sched_;
  sim::Substrate substrate_;
  sim::SimDisk disk_;
};

TEST_F(SegmentTest, ReadFaultsInAndReturnsDiskContents) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 4);
  std::uint8_t page[kPageSize] = {};
  page[10] = 0xab;
  RunInTask([&] {
    disk_.WritePage({1, 0}, page, 0);
    Bytes v = seg.Read({1, 10, 1});
    EXPECT_EQ(v, Bytes{0xab});
    EXPECT_EQ(seg.fault_count(), 1u);
    seg.Read({1, 11, 1});  // same page: no new fault
    EXPECT_EQ(seg.fault_count(), 1u);
  });
}

TEST_F(SegmentTest, WriteReadRoundTripAcrossPageBoundary) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 4);
  RunInTask([&] {
    ObjectId oid{1, kPageSize - 2, 4};  // spans pages 0 and 1
    Bytes v{1, 2, 3, 4};
    seg.Pin(oid);
    seg.Write(oid, v, 100);
    seg.Unpin(oid);
    EXPECT_EQ(seg.Read(oid), v);
  });
}

TEST_F(SegmentTest, FirstDirtySignalsOncePerCleanPage) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 4);
  RecordingHooks hooks;
  seg.SetHooks(&hooks);
  RunInTask([&] {
    ObjectId oid{1, 0, 4};
    seg.Pin(oid);
    seg.Write(oid, Bytes{1, 2, 3, 4}, 10);
    seg.Write(oid, Bytes{5, 6, 7, 8}, 20);
    seg.Unpin(oid);
  });
  ASSERT_EQ(hooks.first_dirty.size(), 1u);
  EXPECT_EQ(hooks.first_dirty[0].first, (PageId{1, 0}));
  EXPECT_EQ(hooks.first_dirty[0].second, 10u);  // recovery LSN = first dirtier
}

TEST_F(SegmentTest, EvictionWritesBackThroughWalGate) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 2);
  RecordingHooks hooks;
  seg.SetHooks(&hooks);
  RunInTask([&] {
    ObjectId a{1, 0, 4};
    seg.Pin(a);
    seg.Write(a, Bytes{9, 9, 9, 9}, 42);
    seg.Unpin(a);
    // Touch two more pages; page 0 must be evicted and written back.
    seg.Read({1, kPageSize, 1});
    seg.Read({1, 2 * kPageSize, 1});
  });
  ASSERT_EQ(hooks.before_write.size(), 1u);
  EXPECT_EQ(hooks.before_write[0].second, 42u);  // gate sees the page's last LSN
  ASSERT_EQ(hooks.after_write.size(), 1u);
  EXPECT_TRUE(hooks.after_write[0].second);
  // The sector header got the sequence number the hook returned.
  EXPECT_EQ(disk_.PeekPage({1, 0}).sequence_number, 42u);
  EXPECT_EQ(disk_.PeekPage({1, 0}).data[0], 9);
}

TEST_F(SegmentTest, PinnedPagesAreNeverEvicted) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 2);
  RunInTask([&] {
    ObjectId a{1, 0, 4};
    seg.Pin(a);
    seg.Write(a, Bytes{1, 1, 1, 1}, 7);
    seg.Read({1, kPageSize, 1});
    seg.Read({1, 2 * kPageSize, 1});  // must evict the *other* page
    EXPECT_TRUE(seg.IsPinned(0));
    // Dirty data still in memory, not on disk.
    EXPECT_EQ(disk_.PeekPage({1, 0}).data[0], 0);
    seg.Unpin(a);
  });
}

TEST_F(SegmentTest, SequentialFaultsChargeSequentialReads) {
  RecoverableSegment seg(substrate_, disk_, 1, 64, 4);
  RunInTask([&] {
    for (PageNumber p = 0; p < 10; ++p) {
      seg.Read({1, p * kPageSize, 1});
    }
  });
  const auto counts = substrate_.metrics().Total();
  // First fault is random (a seek), the following nine are sequential.
  EXPECT_EQ(counts.Of(Primitive::kRandomPageIo), 1.0);
  EXPECT_EQ(counts.Of(Primitive::kSequentialRead), 9.0);
}

TEST_F(SegmentTest, RandomFaultsChargeRandomIo) {
  RecoverableSegment seg(substrate_, disk_, 1, 64, 4);
  RunInTask([&] {
    for (PageNumber p : {5u, 60u, 17u, 33u, 2u}) {
      seg.Read({1, p * kPageSize, 1});
    }
  });
  EXPECT_EQ(substrate_.metrics().Total().Of(Primitive::kRandomPageIo), 5.0);
}

TEST_F(SegmentTest, DirtyPageTableTracksRecoveryLsns) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 4);
  RunInTask([&] {
    ObjectId a{1, 0, 4}, b{1, kPageSize, 4};
    seg.Pin(a);
    seg.Pin(b);
    seg.Write(a, Bytes{1, 0, 0, 0}, 11);
    seg.Write(b, Bytes{2, 0, 0, 0}, 22);
    seg.Write(a, Bytes{3, 0, 0, 0}, 33);
    seg.Unpin(a);
    seg.Unpin(b);
    auto dirty = seg.DirtyPages();
    ASSERT_EQ(dirty.size(), 2u);
    EXPECT_EQ(dirty[0], 11u);  // first LSN since clean, not the latest
    EXPECT_EQ(dirty[1], 22u);
    seg.FlushAll();
    EXPECT_TRUE(seg.DirtyPages().empty());
  });
}

TEST_F(SegmentTest, FlushAllStampsSequenceNumbers) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 4);
  RunInTask([&] {
    ObjectId a{1, 0, 4};
    seg.Pin(a);
    seg.Write(a, Bytes{1, 2, 3, 4}, 55);
    seg.Unpin(a);
    seg.FlushAll();
  });
  EXPECT_EQ(disk_.PeekPage({1, 0}).sequence_number, 55u);
  EXPECT_EQ(disk_.PeekPage({1, 0}).data[2], 3);
}

TEST_F(SegmentTest, AllFramesPinnedThrowsBufferPoolExhausted) {
  // Regression: a pin-discipline bug (pinning more pages than the pool
  // holds) used to die on an assert; it must surface as a typed error and
  // leave the pinned frames intact.
  RecoverableSegment seg(substrate_, disk_, 1, 8, 2);
  RunInTask([&] {
    ObjectId a{1, 0, 4}, b{1, kPageSize, 4};
    seg.Pin(a);
    seg.Pin(b);  // the whole two-frame pool is now pinned
    EXPECT_THROW(seg.Read({1, 2 * kPageSize, 1}), BufferPoolExhausted);
    EXPECT_TRUE(seg.IsPinned(0));
    EXPECT_TRUE(seg.IsPinned(1));
    seg.Unpin(a);  // one frame released: the same fault now succeeds
    seg.Read({1, 2 * kPageSize, 1});
    seg.Unpin(b);
  });
}

TEST_F(SegmentTest, CleanPreferringEvictionStealsCleanFrameFirst) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 2);
  seg.set_prefer_clean_eviction(true);
  RecordingHooks hooks;
  seg.SetHooks(&hooks);
  RunInTask([&] {
    ObjectId dirty{1, 0, 4};
    seg.Pin(dirty);
    seg.Write(dirty, Bytes{1, 2, 3, 4}, 5);
    seg.Unpin(dirty);            // page 0: dirty and LRU-oldest
    seg.Read({1, kPageSize, 1});  // page 1: clean, more recently used
    // Pure LRU would evict dirty page 0 and pay a write-back; the
    // clean-preferring policy steals clean page 1 instead.
    seg.Read({1, 2 * kPageSize, 1});
    EXPECT_TRUE(hooks.before_write.empty());
    auto dirty_pages = seg.DirtyPages();
    ASSERT_EQ(dirty_pages.size(), 1u);
    EXPECT_EQ(dirty_pages.count(0), 1u);  // page 0 still resident, still dirty
  });
}

TEST_F(SegmentTest, FlushPagesElevatorSweepChargesSequentialWrites) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 8);
  RunInTask([&] {
    for (PageNumber p : {0u, 1u, 2u, 4u}) {
      ObjectId oid{1, p * kPageSize, 4};
      seg.Pin(oid);
      seg.Write(oid, Bytes{1, 1, 1, 1}, 10 + p);
      seg.Unpin(oid);
    }
    EXPECT_EQ(seg.FlushPages({0, 1, 2, 4}, /*background=*/true), 4);
    EXPECT_TRUE(seg.DirtyPages().empty());
    EXPECT_EQ(seg.resident_pages(), 4u);  // cleaned in place, not evicted
  });
  // Page 0 seeks, pages 1 and 2 continue the sweep, page 4 seeks again.
  const auto counts = substrate_.metrics().Total();
  EXPECT_EQ(counts.Of(Primitive::kSequentialWrite), 2.0);
  EXPECT_EQ(substrate_.metrics().page_writes_background(), 4.0);
  EXPECT_EQ(substrate_.metrics().page_writes_foreground(), 0.0);
}

TEST_F(SegmentTest, FlushPagesSkipsPinnedUnlessAsked) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 4);
  RunInTask([&] {
    ObjectId a{1, 0, 4};
    seg.Pin(a);
    seg.Write(a, Bytes{7, 7, 7, 7}, 9);
    // The background cleaner skips pinned frames entirely...
    EXPECT_TRUE(seg.CleanCandidates().empty());
    EXPECT_EQ(seg.FlushPages({0}, /*background=*/true), 0);
    EXPECT_EQ(disk_.PeekPage({1, 0}).data[0], 0);
    // ...while reclamation writes (but does not steal) the pinned frame.
    EXPECT_EQ(seg.FlushPages({0}, /*background=*/false, /*write_pinned=*/true), 1);
    EXPECT_EQ(disk_.PeekPage({1, 0}).data[0], 7);
    EXPECT_TRUE(seg.IsPinned(0));
    EXPECT_TRUE(seg.DirtyPages().empty());
    seg.Unpin(a);
  });
}

TEST_F(SegmentTest, CleanCandidatesAreDirtyUnpinnedFrames) {
  RecoverableSegment seg(substrate_, disk_, 1, 8, 4);
  RunInTask([&] {
    ObjectId a{1, 0, 4}, b{1, kPageSize, 4};
    seg.Pin(a);
    seg.Pin(b);
    seg.Write(a, Bytes{1, 0, 0, 0}, 11);
    seg.Write(b, Bytes{2, 0, 0, 0}, 22);
    seg.Unpin(a);
    seg.Read({1, 2 * kPageSize, 1});  // page 2: resident but clean
    auto candidates = seg.CleanCandidates();
    ASSERT_EQ(candidates.size(), 1u);  // only page 0: dirty AND unpinned
    EXPECT_EQ(candidates[0].page, 0u);
    EXPECT_EQ(candidates[0].recovery_lsn, 11u);
    seg.Unpin(b);
  });
}

TEST_F(SegmentTest, LargeArrayScanStaysWithinBufferBudget) {
  // The paging benchmark shape: an array 3x larger than the pool.
  constexpr PageNumber kPages = 96;
  RecoverableSegment seg(substrate_, disk_, 1, kPages, 32);
  RunInTask([&] {
    for (PageNumber p = 0; p < kPages; ++p) {
      seg.Read({1, p * kPageSize, 4});
    }
    EXPECT_LE(seg.resident_pages(), 32u);
    EXPECT_EQ(seg.fault_count(), kPages);
  });
}

}  // namespace
}  // namespace tabs::kernel
