// Tests for the distributed performance monitor: primitive events recorded
// per node in virtual-time order, enabling the Section 5.2-style latency
// decomposition of a distributed transaction.

#include "src/sim/tracer.h"

#include <gtest/gtest.h>

#include "src/servers/array_server.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

TEST(TracerTest, DisabledByDefaultAndRecordsNothing) {
  World world(1);
  auto* arr = world.AddServerOf<servers::ArrayServer>(1, "a", 8u);
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) { return arr->SetCell(tx, 0, 1); });
  });
  EXPECT_TRUE(world.substrate().tracer().events().empty());
}

TEST(TracerTest, DistributedTransactionTimelineSpansNodes) {
  World world(2);
  auto* local = world.AddServerOf<servers::ArrayServer>(1, "l", 8u);
  auto* remote = world.AddServerOf<servers::ArrayServer>(2, "r", 8u);
  world.substrate().tracer().Enable(true);
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      local->SetCell(tx, 0, 1);
      remote->SetCell(tx, 0, 2);
      return Status::kOk;
    });
  });
  const auto& events = world.substrate().tracer().events();
  ASSERT_FALSE(events.empty());

  bool node1 = false;
  bool node2 = false;
  bool saw_remote_call = false;
  bool saw_stable_write = false;
  for (const auto& e : events) {
    node1 |= e.node == 1;
    node2 |= e.node == 2;
    saw_remote_call |= e.category == "Inter-Node Data Server Call";
    saw_stable_write |= e.category == "Stable Storage Write";
  }
  EXPECT_TRUE(node1);
  EXPECT_TRUE(node2);
  EXPECT_TRUE(saw_remote_call);
  EXPECT_TRUE(saw_stable_write);

  // The rendered timeline is time-ordered and mentions both nodes.
  std::string timeline = world.substrate().tracer().Timeline();
  EXPECT_NE(timeline.find("node1"), std::string::npos);
  EXPECT_NE(timeline.find("node2"), std::string::npos);
  std::string summary = world.substrate().tracer().Summary();
  EXPECT_NE(summary.find("Stable Storage Write"), std::string::npos);
}

TEST(TracerTest, ClearResets) {
  sim::Tracer tracer;
  tracer.Enable(true);
  tracer.Record(10, 1, "x");
  EXPECT_EQ(tracer.events().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, TimelineOrdersByVirtualTime) {
  sim::Tracer tracer;
  tracer.Enable(true);
  tracer.Record(30'000, 2, "late");
  tracer.Record(10'000, 1, "early");
  tracer.Record(20'000, 1, "middle");
  std::string timeline = tracer.Timeline();
  size_t early = timeline.find("early");
  size_t middle = timeline.find("middle");
  size_t late = timeline.find("late");
  EXPECT_LT(early, middle);
  EXPECT_LT(middle, late);
}

}  // namespace
}  // namespace tabs
