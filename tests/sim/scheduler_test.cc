// Tests for the cooperative virtual-time scheduler — the execution model
// everything else in TABS stands on.

#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace tabs::sim {
namespace {

TEST(SchedulerTest, RunsSingleTask) {
  Scheduler sched;
  bool ran = false;
  sched.Spawn("t", 1, 0, [&] {
    ran = true;
    EXPECT_EQ(sched.Now(), 0);
    sched.Charge(100);
    EXPECT_EQ(sched.Now(), 100);
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, OrdersTasksByVirtualTime) {
  Scheduler sched;
  std::vector<int> order;
  sched.Spawn("late", 1, 500, [&] { order.push_back(2); });
  sched.Spawn("early", 1, 10, [&] { order.push_back(1); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, TieBrokenBySpawnOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.Spawn("a", 1, 0, [&] { order.push_back(1); });
  sched.Spawn("b", 1, 0, [&] { order.push_back(2); });
  sched.Spawn("c", 1, 0, [&] { order.push_back(3); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, YieldInterleavesByTime) {
  Scheduler sched;
  std::vector<std::string> trace;
  sched.Spawn("a", 1, 0, [&] {
    trace.push_back("a1");
    sched.Charge(100);
    sched.Yield();
    trace.push_back("a2");
  });
  sched.Spawn("b", 1, 50, [&] { trace.push_back("b"); });
  sched.Run();
  // a runs first (t=0), charges to 100, yields; b (t=50) precedes a's resume.
  EXPECT_EQ(trace, (std::vector<std::string>{"a1", "b", "a2"}));
}

TEST(SchedulerTest, WaitAndNotifyTransfersTime) {
  Scheduler sched;
  WaitQueue q;
  SimTime waiter_resumed_at = -1;
  sched.Spawn("waiter", 1, 0, [&] {
    EXPECT_TRUE(sched.Wait(q));
    waiter_resumed_at = sched.Now();
  });
  sched.Spawn("notifier", 1, 0, [&] {
    sched.Charge(777);
    sched.NotifyOne(q);
  });
  EXPECT_EQ(sched.Run(), 0);
  // The waiter resumes at the notifier's clock: the wake-up is an event.
  EXPECT_EQ(waiter_resumed_at, 777);
}

TEST(SchedulerTest, WaitTimeoutFires) {
  Scheduler sched;
  WaitQueue q;
  bool notified = true;
  SimTime woke_at = -1;
  sched.Spawn("waiter", 1, 100, [&] {
    notified = sched.Wait(q, 250);
    woke_at = sched.Now();
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_FALSE(notified);
  EXPECT_EQ(woke_at, 350);  // blocked at t=100, timeout after 250
}

TEST(SchedulerTest, NotifyBeatsTimeout) {
  Scheduler sched;
  WaitQueue q;
  bool notified = false;
  sched.Spawn("waiter", 1, 0, [&] { notified = sched.Wait(q, 1000); });
  sched.Spawn("notifier", 1, 0, [&] {
    sched.Charge(10);
    sched.NotifyOne(q);
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_TRUE(notified);
}

TEST(SchedulerTest, TimersFireInDeadlineOrder) {
  Scheduler sched;
  WaitQueue q;
  std::vector<std::string> order;
  // Armed out of deadline order: the queue must fire them by deadline, not
  // by arming order.
  sched.Spawn("slow", 1, 0, [&] {
    sched.Wait(q, 900);
    order.push_back("slow@" + std::to_string(sched.Now()));
  });
  sched.Spawn("fast", 1, 0, [&] {
    sched.Wait(q, 300);
    order.push_back("fast@" + std::to_string(sched.Now()));
  });
  sched.Spawn("mid", 1, 0, [&] {
    sched.Wait(q, 600);
    order.push_back("mid@" + std::to_string(sched.Now()));
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(order, (std::vector<std::string>{"fast@300", "mid@600", "slow@900"}));
}

TEST(SchedulerTest, SameDeadlineTimersFireInArmingOrder) {
  Scheduler sched;
  WaitQueue q;
  std::vector<int> order;
  // Both deadlines land at exactly t=500; the tie must break by arming
  // order (first armed fires first), reproducing FIFO insertion order.
  sched.Spawn("first", 1, 0, [&] {
    sched.Wait(q, 500);
    order.push_back(1);
  });
  sched.Spawn("second", 1, 100, [&] {
    sched.Wait(q, 400);
    order.push_back(2);
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, SameTimeSelectionAlwaysPicksLowestId) {
  Scheduler sched;
  std::vector<std::string> trace;
  // The tie-break at equal virtual times is (time, id) — ids are assigned in
  // spawn order. A task yielding without advancing its clock is immediately
  // re-selected while it holds the lowest id, so each task drains all its
  // rounds before the next starts. Deterministic, and exactly the behaviour
  // of the original O(n) ready-scan the event queue replaced.
  for (int t = 0; t < 3; ++t) {
    sched.Spawn("t", 1, 0, [&, t] {
      for (int round = 0; round < 3; ++round) {
        trace.push_back(std::to_string(t) + ":" + std::to_string(round));
        sched.Yield();
      }
    });
  }
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(trace, (std::vector<std::string>{"0:0", "0:1", "0:2", "1:0", "1:1", "1:2",
                                             "2:0", "2:1", "2:2"}));
}

TEST(SchedulerTest, CancelledTimerDoesNotFireLater) {
  Scheduler sched;
  WaitQueue q;
  std::vector<std::string> events;
  sched.Spawn("waiter", 1, 0, [&] {
    // First wait is notified before its 10'000 deadline; the timer must be
    // purged eagerly — a later wait with a nearer deadline must be the one
    // that fires, and at its own time.
    bool notified = sched.Wait(q, 10'000);
    events.push_back(std::string(notified ? "notified" : "timeout") + "@" +
                     std::to_string(sched.Now()));
    notified = sched.Wait(q, 200);
    events.push_back(std::string(notified ? "notified" : "timeout") + "@" +
                     std::to_string(sched.Now()));
  });
  sched.Spawn("notifier", 1, 0, [&] {
    sched.Charge(50);
    sched.NotifyOne(q);
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(events, (std::vector<std::string>{"notified@50", "timeout@250"}));
}

TEST(SchedulerTest, StepCountIsDeterministic) {
  auto run = [] {
    Scheduler sched;
    WaitQueue q;
    for (int t = 0; t < 4; ++t) {
      sched.Spawn("t", 1, t * 10, [&] {
        sched.Charge(25);
        sched.Yield();
        sched.Wait(q, 100);
        sched.Charge(5);
      });
    }
    sched.Spawn("waker", 1, 60, [&] { sched.NotifyAll(q); });
    EXPECT_EQ(sched.Run(), 0);
    return sched.steps();
  };
  std::uint64_t first = run();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, run());
}

TEST(SchedulerTest, NotifyAllWakesEveryWaiter) {
  Scheduler sched;
  WaitQueue q;
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    sched.Spawn("w", 1, 0, [&] {
      sched.Wait(q);
      ++woken;
    });
  }
  sched.Spawn("n", 1, 10, [&] { sched.NotifyAll(q); });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(woken, 5);
}

TEST(SchedulerTest, UnnotifiedWaiterReportedAsBlocked) {
  Scheduler sched;
  WaitQueue q;
  sched.Spawn("stuck", 1, 0, [&] { sched.Wait(q); });
  EXPECT_EQ(sched.Run(), 1);
}

TEST(SchedulerTest, SpawnFromInsideTask) {
  Scheduler sched;
  std::vector<int> order;
  sched.Spawn("parent", 1, 0, [&] {
    order.push_back(1);
    sched.Charge(100);
    sched.Spawn("child", 1, sched.Now() + 50, [&] { order.push_back(2); });
  });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, ChannelRoundTrip) {
  Scheduler sched;
  Channel<int> ch(sched);
  int got = 0;
  SimTime got_at = 0;
  sched.Spawn("consumer", 1, 0, [&] {
    got = ch.Pop();
    got_at = sched.Now();
  });
  sched.Spawn("producer", 2, 40, [&] {
    sched.Charge(60);
    ch.Push(42);
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(got, 42);
  EXPECT_EQ(got_at, 100);
}

TEST(SchedulerTest, ChannelPopTimeout) {
  Scheduler sched;
  Channel<int> ch(sched);
  bool got = true;
  sched.Spawn("consumer", 1, 0, [&] {
    int v = 0;
    got = ch.PopWithTimeout(500, &v);
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_FALSE(got);
}

TEST(SchedulerTest, KillWhereUnblocksVictim) {
  Scheduler sched;
  WaitQueue q;
  bool reached_after_wait = false;
  sched.Spawn("victim", 7, 0, [&] {
    sched.Wait(q);
    reached_after_wait = true;  // must never run: Wait throws TaskKilled
  });
  sched.Spawn("killer", 1, 10, [&] {
    sched.KillWhere([](const Task& t) { return t.node == 7; });
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_FALSE(reached_after_wait);
}

TEST(SchedulerTest, KillSelfThrows) {
  Scheduler sched;
  bool after = false;
  sched.Spawn("self", 9, 0, [&] {
    sched.KillWhere([](const Task& t) { return t.node == 9; });
    after = true;  // unreachable
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_FALSE(after);
}

TEST(SchedulerTest, AdvanceToOnlyMovesForward) {
  Scheduler sched;
  sched.Spawn("t", 1, 100, [&] {
    sched.AdvanceTo(50);
    EXPECT_EQ(sched.Now(), 100);
    sched.AdvanceTo(200);
    EXPECT_EQ(sched.Now(), 200);
  });
  sched.Run();
}

TEST(SchedulerTest, ManySequentialTasks) {
  Scheduler sched;
  int count = 0;
  for (int i = 0; i < 200; ++i) {
    sched.Spawn("t", 1, i, [&] { ++count; });
  }
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(count, 200);
}

TEST(FutureTest, FulfilBeforeAwaitReturnsWithoutWaiting) {
  Scheduler sched;
  sched.Spawn("t", 1, 0, [&] {
    Future<int> f(sched);
    EXPECT_FALSE(f.ready());
    f.Fulfil(7);
    EXPECT_TRUE(f.ready());
    SimTime t0 = sched.Now();
    EXPECT_TRUE(f.Await(100));
    EXPECT_EQ(sched.Now(), t0);  // already ready: no virtual time passes
    EXPECT_EQ(f.value(), 7);
  });
  EXPECT_EQ(sched.Run(), 0);
}

TEST(FutureTest, AwaitBlocksUntilFulfilledAndAdoptsFulfillerClock) {
  Scheduler sched;
  auto f = std::make_shared<Future<int>>(sched);
  bool resumed = false;
  sched.Spawn("waiter", 1, 0, [&] {
    EXPECT_TRUE(f->Await());
    EXPECT_EQ(f->value(), 42);
    // The waiter resumes no earlier than the fulfiller's clock.
    EXPECT_EQ(sched.Now(), 500);
    resumed = true;
  });
  sched.Spawn("producer", 2, 500, [&] { f->Fulfil(42); });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_TRUE(resumed);
}

TEST(FutureTest, AwaitTimesOutWhenNeverFulfilled) {
  Scheduler sched;
  auto f = std::make_shared<Future<int>>(sched);
  sched.Spawn("waiter", 1, 0, [&] {
    SimTime t0 = sched.Now();
    EXPECT_FALSE(f->Await(250));
    EXPECT_EQ(sched.Now(), t0 + 250);
    EXPECT_FALSE(f->ready());
  });
  EXPECT_EQ(sched.Run(), 0);
}

TEST(FutureTest, ManyWaitersAllWake) {
  Scheduler sched;
  auto f = std::make_shared<Future<int>>(sched);
  int woken = 0;
  for (int i = 0; i < 4; ++i) {
    sched.Spawn("waiter", 1, 0, [&] {
      EXPECT_TRUE(f->Await());
      ++woken;
    });
  }
  sched.Spawn("producer", 2, 10, [&] { f->Fulfil(1); });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(woken, 4);
}

TEST(SchedulerTest, DestructorUnwindsBlockedTasks) {
  auto sched = std::make_unique<Scheduler>();
  WaitQueue q;
  sched->Spawn("stuck", 1, 0, [&] { sched->Wait(q); });
  EXPECT_EQ(sched->Run(), 1);
  sched.reset();  // must not hang or leak threads
  SUCCEED();
}

}  // namespace
}  // namespace tabs::sim
