// Golden tests for the performance monitor's Section 5.2 latency
// decomposition: for a debit-credit transaction (the paper's canonical
// banking example) the per-component virtual times must sum EXACTLY — to the
// microsecond — to the end-to-end elapsed time, locally and across nodes,
// under the Table 5-1 (baseline) cost model. Any residual means a clock
// advance escaped attribution (a missed observer hook or a span imbalance).

#include <gtest/gtest.h>

#include <numeric>

#include "src/servers/account_server.h"
#include "src/sim/tracer.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

using servers::AccountServer;

// Runs one warmed-up debit-credit transaction (withdraw from the first
// server, deposit to the second — the same server twice when local) and
// returns the decomposition of exactly that transaction.
struct Decomposition {
  sim::ComponentTimes component_us{};
  SimTime elapsed_us = 0;
};

Decomposition RunDebitCredit(int nodes) {
  WorldOptions opt;
  opt.commit_mode = txn::CommitMode::kTwoPhase;  // the goldens decompose 2PC
  World world(nodes, opt);
  AccountServer* debit = world.AddServerOf<AccountServer>(1, "accounts-1", 4u);
  AccountServer* credit =
      nodes >= 2 ? world.AddServerOf<AccountServer>(2, "accounts-2", 4u) : debit;
  Decomposition d;
  world.RunApp(1, [&](Application& app) {
    // Fund the source account and warm the buffer pools / CM sessions, so
    // the measured transaction is the paper's steady-state shape.
    app.Transaction([&](const server::Tx& tx) {
      debit->Deposit(tx, 0, 1000);
      credit->Deposit(tx, 1, 1000);
      return Status::kOk;
    });
    sim::Tracer& tracer = world.substrate().tracer();
    tracer.Enable(true);
    SimTime t0 = world.scheduler().Now();
    sim::ComponentTimes a0 = tracer.CurrentTaskAttribution();
    app.Transaction([&](const server::Tx& tx) {
      debit->Withdraw(tx, 0, 100);
      credit->Deposit(tx, 1, 100);
      return Status::kOk;
    });
    SimTime t1 = world.scheduler().Now();
    sim::ComponentTimes a1 = tracer.CurrentTaskAttribution();
    d.elapsed_us = t1 - t0;
    for (int c = 0; c < sim::kComponentCount; ++c) {
      d.component_us[c] = a1[c] - a0[c];
    }
  });
  return d;
}

SimTime Sum(const sim::ComponentTimes& t) {
  return std::accumulate(t.begin(), t.end(), SimTime{0});
}

SimTime Of(const Decomposition& d, sim::Component c) {
  return d.component_us[static_cast<int>(c)];
}

TEST(TraceDecompositionTest, LocalDebitCreditSumsExactly) {
  Decomposition d = RunDebitCredit(1);
  EXPECT_EQ(Sum(d.component_us), d.elapsed_us);  // zero residual, exact

  // Golden decomposition under Table 5-1 baseline costs. A local write pair
  // spends its time in the Transaction Manager (commit processing and
  // process-CPU overhead), the Data Server (calls, locking, and the log
  // spooling messages), and the Log (stable forces); nothing leaves the
  // node. The RM's bookkeeping charges no primitives of its own — its
  // message costs are paid at the Data Server boundary, exactly the
  // double-count the paper's Section 5.2 analysis worries about.
  EXPECT_EQ(d.elapsed_us, 282'400);
  EXPECT_EQ(Of(d, sim::Component::kTransactionManager), 124'400);
  EXPECT_EQ(Of(d, sim::Component::kDataServer), 79'000);
  EXPECT_EQ(Of(d, sim::Component::kLog), 79'000);
  EXPECT_EQ(Of(d, sim::Component::kCommunicationManager), 0);
  EXPECT_EQ(Of(d, sim::Component::kRecoveryManager), 0);
  EXPECT_EQ(Of(d, sim::Component::kKernel), 0);
  EXPECT_EQ(Of(d, sim::Component::kApplication), 0);
}

TEST(TraceDecompositionTest, RemoteDebitCreditSumsExactly) {
  Decomposition d = RunDebitCredit(2);
  EXPECT_EQ(Sum(d.component_us), d.elapsed_us);  // zero residual, exact

  // The two-node transfer adds the Communication Manager (session RPC and
  // the two-phase-commit message flow) on top of the local shape, and the
  // coordinator's clock absorbs the participant's prepare/commit work it
  // waits on (the adopt-on-wake rule charges the waiter).
  EXPECT_EQ(d.elapsed_us, 923'600);
  EXPECT_EQ(Of(d, sim::Component::kTransactionManager), 511'700);
  EXPECT_EQ(Of(d, sim::Component::kCommunicationManager), 192'000);
  EXPECT_EQ(Of(d, sim::Component::kDataServer), 58'900);
  EXPECT_EQ(Of(d, sim::Component::kLog), 158'000);
  EXPECT_EQ(Of(d, sim::Component::kApplication), 3'000);
  EXPECT_EQ(Of(d, sim::Component::kRecoveryManager), 0);
  EXPECT_EQ(Of(d, sim::Component::kKernel), 0);
}

TEST(TraceDecompositionTest, DecompositionIsDeterministic) {
  Decomposition a = RunDebitCredit(2);
  Decomposition b = RunDebitCredit(2);
  EXPECT_EQ(a.elapsed_us, b.elapsed_us);
  EXPECT_EQ(a.component_us, b.component_us);
}

TEST(TraceDecompositionTest, FormatDecompositionMatchesComponents) {
  Decomposition d = RunDebitCredit(1);
  std::string text = sim::FormatDecomposition(d.component_us);
  EXPECT_NE(text.find("Transaction Manager"), std::string::npos);
  EXPECT_NE(text.find("Log"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
  // Components that saw no time are omitted from the rendering.
  EXPECT_EQ(text.find("Communication Manager"), std::string::npos);
}

}  // namespace
}  // namespace tabs
