// Schema validation and determinism for the performance monitor's Chrome
// trace-event export (chrome://tracing / Perfetto "JSON object format").
//
// The repo takes no third-party JSON dependency, so the test carries a
// minimal recursive-descent parser covering exactly the JSON subset the
// exporter can emit. Validation failures therefore catch both malformed
// JSON (bad escaping, trailing commas) and schema drift (missing fields,
// unsorted events, spans without metadata tracks).

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/servers/array_server.h"
#include "src/sim/tracer.h"
#include "src/tabs/world.h"

namespace tabs {
namespace {

// --- minimal JSON parser -----------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.contains(key); }
  const JsonValue& At(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Returns false (with an error message) instead of asserting, so tests can
  // report the offending offset.
  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) {
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after top-level value");
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& why) {
    error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Fail("dangling escape");
        }
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            pos_ += 4;  // decoded value is irrelevant to the schema checks
            out->push_back('?');
            break;
          }
          default:
            return Fail("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      return Fail("unterminated string");
    }
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        if (!Consume(':')) {
          return false;
        }
        JsonValue v;
        if (!ParseValue(&v)) {
          return false;
        }
        if (out->object.contains(key)) {
          return Fail("duplicate key '" + key + "'");
        }
        out->object.emplace(std::move(key), std::move(v));
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) {
          return false;
        }
        out->array.push_back(std::move(v));
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("unrecognized token");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// --- scenario ----------------------------------------------------------------

// One two-node write transaction, traced end to end. Same shape as the
// table5_4 timeline demo.
std::string TracedTransactionJson() {
  World world(2);
  auto* local = world.AddServerOf<servers::ArrayServer>(1, "l", 8u);
  auto* remote = world.AddServerOf<servers::ArrayServer>(2, "r", 8u);
  world.substrate().tracer().Enable(true);
  world.RunApp(1, [&](Application& app) {
    app.Transaction([&](const server::Tx& tx) {
      local->SetCell(tx, 0, 1);
      remote->SetCell(tx, 0, 2);
      return Status::kOk;
    });
  });
  return world.substrate().tracer().ChromeTraceJson();
}

TEST(ChromeTraceTest, ExportValidatesAgainstTraceEventSchema) {
  std::string text = TracedTransactionJson();
  JsonParser parser(text);
  JsonValue root;
  ASSERT_TRUE(parser.Parse(&root)) << parser.error();

  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(root.Has("traceEvents"));
  const JsonValue& events = root.At("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(events.array.empty());

  // Tracks named by metadata events; spans and instants must land on them.
  std::set<double> named_processes;
  std::set<std::pair<double, double>> named_threads;
  bool seen_duration_event = false;
  double last_ts = -1;
  int spans = 0;
  int instants = 0;

  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    ASSERT_TRUE(e.Has("ph"));
    ASSERT_TRUE(e.Has("pid"));
    ASSERT_TRUE(e.Has("name"));
    const std::string& ph = e.At("ph").str;
    double pid = e.At("pid").number;

    if (ph == "M") {
      // Metadata: process_name / thread_name, all emitted before any
      // timed event so viewers label tracks on first sight.
      EXPECT_FALSE(seen_duration_event) << "metadata after a timed event";
      const std::string& name = e.At("name").str;
      ASSERT_TRUE(name == "process_name" || name == "thread_name") << name;
      ASSERT_TRUE(e.Has("args"));
      ASSERT_TRUE(e.At("args").Has("name"));
      if (name == "process_name") {
        named_processes.insert(pid);
      } else {
        named_threads.insert({pid, e.At("tid").number});
      }
      continue;
    }

    seen_duration_event = true;
    ASSERT_TRUE(e.Has("ts"));
    ASSERT_TRUE(e.Has("tid"));
    double ts = e.At("ts").number;
    double tid = e.At("tid").number;
    EXPECT_TRUE(named_processes.contains(pid)) << "event on unnamed process " << pid;
    EXPECT_TRUE(named_threads.contains({pid, tid})) << "event on unnamed thread";

    if (ph == "X") {
      // Complete events: non-negative duration, sorted by begin time.
      ++spans;
      ASSERT_TRUE(e.Has("dur"));
      EXPECT_GE(e.At("dur").number, 0);
      EXPECT_GE(ts, last_ts) << "span events not sorted by ts";
      last_ts = ts;
      ASSERT_TRUE(e.Has("cat"));
    } else if (ph == "i") {
      // Instant events: thread-scoped primitive records.
      ++instants;
      ASSERT_TRUE(e.Has("s"));
      EXPECT_EQ(e.At("s").str, "t");
    } else {
      FAIL() << "unexpected phase '" << ph << "'";
    }
  }

  // The two-node write produces spans on both nodes (2PC on the remote) and
  // instants for every charged primitive.
  EXPECT_GT(spans, 5);
  EXPECT_GT(instants, 10);
  EXPECT_TRUE(named_processes.contains(1));
  EXPECT_TRUE(named_processes.contains(2));
}

TEST(ChromeTraceTest, ExportIsByteIdenticalAcrossRuns) {
  std::string a = TracedTransactionJson();
  std::string b = TracedTransactionJson();
  EXPECT_EQ(a, b);  // full byte identity, not just same event count
  EXPECT_FALSE(a.empty());
}

TEST(ChromeTraceTest, UnclosedSpansExportWithZeroDuration) {
  sim::Tracer tracer;
  tracer.Enable(true);
  // No scheduler bound: Record() still works; spans need tasks, so this
  // trace only carries instants — the export must still validate.
  tracer.Record(10, 1, "probe", "detail with \"quotes\" and \\ backslash\nnewline");
  std::string text = tracer.ChromeTraceJson();
  JsonParser parser(text);
  JsonValue root;
  ASSERT_TRUE(parser.Parse(&root)) << parser.error();
  ASSERT_EQ(root.At("traceEvents").array.size(), 3u);  // 2 metadata + 1 instant
}

}  // namespace
}  // namespace tabs
