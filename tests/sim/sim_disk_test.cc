#include "src/sim/sim_disk.h"

#include <gtest/gtest.h>

#include "src/sim/substrate.h"

namespace tabs::sim {
namespace {

class SimDiskTest : public ::testing::Test {
 protected:
  SimDiskTest()
      : substrate_(sched_, CostModel::Baseline(), ArchitectureModel::Prototype()),
        disk_(substrate_) {}

  void RunInTask(std::function<void()> fn) {
    sched_.Spawn("test", 1, 0, std::move(fn));
    ASSERT_EQ(sched_.Run(), 0);
  }

  Scheduler sched_;
  Substrate substrate_;
  SimDisk disk_;
};

TEST_F(SimDiskTest, NewPagesAreZeroFilled) {
  disk_.EnsureSegment(1, 4);
  RunInTask([&] {
    std::uint8_t buf[kPageSize];
    std::uint64_t seq = disk_.ReadPage({1, 2}, buf, false);
    EXPECT_EQ(seq, 0u);
    for (auto b : buf) {
      EXPECT_EQ(b, 0);
    }
  });
}

TEST_F(SimDiskTest, WriteReadRoundTripWithSequenceNumber) {
  disk_.EnsureSegment(1, 2);
  RunInTask([&] {
    std::uint8_t page[kPageSize];
    for (size_t i = 0; i < kPageSize; ++i) {
      page[i] = static_cast<std::uint8_t>(i & 0xff);
    }
    disk_.WritePage({1, 0}, page, 77);
    std::uint8_t buf[kPageSize];
    EXPECT_EQ(disk_.ReadPage({1, 0}, buf, false), 77u);
    EXPECT_EQ(0, memcmp(page, buf, kPageSize));
    EXPECT_EQ(disk_.ReadSequenceNumber({1, 0}), 77u);
  });
}

TEST_F(SimDiskTest, ChargesRandomVsSequentialCosts) {
  disk_.EnsureSegment(1, 2);
  RunInTask([&] {
    std::uint8_t buf[kPageSize];
    SimTime t0 = sched_.Now();
    disk_.ReadPage({1, 0}, buf, /*sequential=*/false);
    SimTime random_cost = sched_.Now() - t0;
    t0 = sched_.Now();
    disk_.ReadPage({1, 1}, buf, /*sequential=*/true);
    SimTime seq_cost = sched_.Now() - t0;
    EXPECT_EQ(random_cost, CostModel::Baseline().Of(Primitive::kRandomPageIo));
    EXPECT_EQ(seq_cost, CostModel::Baseline().Of(Primitive::kSequentialRead));
  });
}

TEST_F(SimDiskTest, SequentialWritesChargeTheCheaperPrimitive) {
  disk_.EnsureSegment(1, 3);
  RunInTask([&] {
    std::uint8_t buf[kPageSize] = {};
    SimTime t0 = sched_.Now();
    disk_.WritePage({1, 0}, buf, 1, /*sequential=*/false);
    SimTime random_cost = sched_.Now() - t0;
    t0 = sched_.Now();
    disk_.WritePage({1, 1}, buf, 2, /*sequential=*/true);
    SimTime seq_cost = sched_.Now() - t0;
    EXPECT_EQ(random_cost, CostModel::Baseline().Of(Primitive::kRandomPageIo));
    EXPECT_EQ(seq_cost, CostModel::Baseline().Of(Primitive::kSequentialWrite));
  });
  const auto counts = substrate_.metrics().Total();
  EXPECT_EQ(counts.Of(Primitive::kRandomPageIo), 1.0);
  EXPECT_EQ(counts.Of(Primitive::kSequentialWrite), 1.0);
}

TEST_F(SimDiskTest, CountsPrimitives) {
  disk_.EnsureSegment(1, 2);
  RunInTask([&] {
    std::uint8_t buf[kPageSize] = {};
    disk_.ReadPage({1, 0}, buf, false);
    disk_.WritePage({1, 0}, buf, 1);
    disk_.ReadPage({1, 1}, buf, true);
  });
  const auto& counts = substrate_.metrics().Bucket(Phase::kPreCommit);
  EXPECT_EQ(counts.Of(Primitive::kRandomPageIo), 2.0);
  EXPECT_EQ(counts.Of(Primitive::kSequentialRead), 1.0);
}

TEST_F(SimDiskTest, SegmentGrowsButKeepsData) {
  disk_.EnsureSegment(3, 1);
  RunInTask([&] {
    std::uint8_t page[kPageSize] = {42};
    disk_.WritePage({3, 0}, page, 5);
    disk_.EnsureSegment(3, 10);
    EXPECT_EQ(disk_.SegmentPages(3), 10u);
    std::uint8_t buf[kPageSize];
    disk_.ReadPage({3, 0}, buf, false);
    EXPECT_EQ(buf[0], 42);
  });
}

}  // namespace
}  // namespace tabs::sim
