// Unit tests for the performance-methodology plumbing: cost models, phase
// buckets, predicted-time computation, and the substrate's charging rules.

#include <gtest/gtest.h>

#include "src/sim/substrate.h"

namespace tabs::sim {
namespace {

TEST(CostModelTest, BaselineMatchesTable51) {
  CostModel m = CostModel::Baseline();
  EXPECT_EQ(m.Of(Primitive::kDataServerCall), 26'100);
  EXPECT_EQ(m.Of(Primitive::kInterNodeDataServerCall), 89'000);
  EXPECT_EQ(m.Of(Primitive::kDatagram), 25'000);
  EXPECT_EQ(m.Of(Primitive::kSmallMessage), 3'000);
  EXPECT_EQ(m.Of(Primitive::kLargeMessage), 4'400);
  EXPECT_EQ(m.Of(Primitive::kPointerMessage), 18'300);
  EXPECT_EQ(m.Of(Primitive::kRandomPageIo), 32'000);
  EXPECT_EQ(m.Of(Primitive::kSequentialRead), 16'000);
  EXPECT_EQ(m.Of(Primitive::kStableWrite), 79'000);
}

TEST(CostModelTest, AchievableMatchesTable55) {
  CostModel m = CostModel::Achievable();
  EXPECT_EQ(m.Of(Primitive::kDataServerCall), 2'500);
  EXPECT_EQ(m.Of(Primitive::kStableWrite), 32'000);
  // Random I/O is disk-bound: the paper projects no improvement.
  EXPECT_EQ(m.Of(Primitive::kRandomPageIo), CostModel::Baseline().Of(Primitive::kRandomPageIo));
}

TEST(MetricsTest, PhaseBucketsSeparate) {
  Metrics m;
  m.Count(Primitive::kSmallMessage, 2);
  m.SetPhase(Phase::kCommit);
  m.Count(Primitive::kSmallMessage, 3);
  m.Count(Primitive::kStableWrite);
  EXPECT_EQ(m.Bucket(Phase::kPreCommit).Of(Primitive::kSmallMessage), 2.0);
  EXPECT_EQ(m.Bucket(Phase::kCommit).Of(Primitive::kSmallMessage), 3.0);
  EXPECT_EQ(m.Total().Of(Primitive::kSmallMessage), 5.0);
  EXPECT_EQ(m.Total().Of(Primitive::kStableWrite), 1.0);
}

TEST(MetricsTest, PhaseScopeRestores) {
  Metrics m;
  {
    PhaseScope scope(m, Phase::kCommit);
    EXPECT_EQ(m.phase(), Phase::kCommit);
    {
      PhaseScope nested(m, Phase::kPreCommit);
      EXPECT_EQ(m.phase(), Phase::kPreCommit);
    }
    EXPECT_EQ(m.phase(), Phase::kCommit);
  }
  EXPECT_EQ(m.phase(), Phase::kPreCommit);
}

TEST(MetricsTest, PredictedTimeIsWeightedSum) {
  PrimitiveCounts c;
  c.Of(Primitive::kDataServerCall) = 1;
  c.Of(Primitive::kSmallMessage) = 4;
  EXPECT_EQ(c.PredictedTime(CostModel::Baseline()), 26'100 + 4 * 3'000);
}

TEST(SubstrateTest, ChargeAdvancesClockAndCounts) {
  Scheduler sched;
  Substrate sub(sched, CostModel::Baseline(), ArchitectureModel::Prototype());
  sched.Spawn("t", 1, 0, [&] {
    sub.Charge(Primitive::kDatagram);
    EXPECT_EQ(sched.Now(), 25'000);
    sub.Charge(Primitive::kSmallMessage, 0.5);
    EXPECT_EQ(sched.Now(), 26'500);
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(sub.metrics().Total().Of(Primitive::kDatagram), 1.0);
  EXPECT_EQ(sub.metrics().Total().Of(Primitive::kSmallMessage), 0.5);
}

TEST(SubstrateTest, MergedArchitectureElidesSystemMessages) {
  Scheduler sched;
  Substrate sub(sched, CostModel::Baseline(), ArchitectureModel::Improved());
  sched.Spawn("t", 1, 0, [&] {
    sub.ChargeSystemMessage(Primitive::kSmallMessage, 5);
    EXPECT_EQ(sched.Now(), 0);  // merged TM/RM: the messages vanish
    sub.Charge(Primitive::kSmallMessage);  // ordinary messages still cost
    EXPECT_EQ(sched.Now(), 3'000);
  });
  EXPECT_EQ(sched.Run(), 0);
  EXPECT_EQ(sub.metrics().Total().Of(Primitive::kSmallMessage), 1.0);
}

TEST(SubstrateTest, BackgroundScopeSuppressesSystemMessages) {
  Scheduler sched;
  Substrate sub(sched, CostModel::Baseline(), ArchitectureModel::Prototype());
  sched.Spawn("t", 1, 0, [&] {
    {
      Substrate::BackgroundScope background(sub);
      sub.ChargeSystemMessage(Primitive::kSmallMessage, 3);
    }
    EXPECT_EQ(sched.Now(), 0);
    sub.ChargeSystemMessage(Primitive::kSmallMessage);
    EXPECT_EQ(sched.Now(), 3'000);  // outside the scope they cost again
  });
  EXPECT_EQ(sched.Run(), 0);
}

TEST(SubstrateTest, PrimitiveNamesAreStable) {
  EXPECT_STREQ(PrimitiveName(Primitive::kDataServerCall), "Data Server Call");
  EXPECT_STREQ(PrimitiveName(Primitive::kStableWrite), "Stable Storage Write");
}

TEST(MetricsFaultTest, FaultCountersAccumulateByKindSeparatelyFromPrimitives) {
  Metrics m;
  m.CountFault(FaultKind::kCrash);
  m.CountFault(FaultKind::kCrash);
  m.CountFault(FaultKind::kTornLogWrite);
  EXPECT_EQ(m.faults_injected(FaultKind::kCrash), 2);
  EXPECT_EQ(m.faults_injected(FaultKind::kTornLogWrite), 1);
  EXPECT_EQ(m.faults_injected(FaultKind::kDelay), 0);
  EXPECT_EQ(m.faults_injected_total(), 3);
  // Fault bookkeeping never leaks into the paper's primitive counts.
  EXPECT_EQ(m.Total().Of(Primitive::kStableWrite), 0);
  EXPECT_EQ(m.Total().Of(Primitive::kDatagram), 0);
}

TEST(MetricsFaultTest, RecoveryAndTruncationCountersTrackAndReset) {
  Metrics m;
  m.CountCrashRecovery();
  m.CountLogTailTruncation(700);
  m.CountLogTailTruncation(44);
  EXPECT_EQ(m.crash_recoveries(), 1);
  EXPECT_EQ(m.log_tail_truncations(), 2);
  EXPECT_EQ(m.log_tail_bytes_truncated(), 744);
  m.Reset();
  EXPECT_EQ(m.crash_recoveries(), 0);
  EXPECT_EQ(m.log_tail_truncations(), 0);
  EXPECT_EQ(m.log_tail_bytes_truncated(), 0);
  EXPECT_EQ(m.faults_injected_total(), 0);
}

TEST(MetricsFaultTest, FaultKindNamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kCrash), "crash");
  EXPECT_STREQ(FaultKindName(FaultKind::kTornLogWrite), "torn-log-write");
}

}  // namespace
}  // namespace tabs::sim
