// Server-library (Table 3-1) unit tests exercised through a bare DataServer:
// address arithmetic, the PinAndBuffer / Staged / LogAndUnPin protocol, the
// LockAndMark marked-object flow, ExecuteTransaction, and the automatic
// commit/abort participation.

#include "src/server/data_server.h"

#include <gtest/gtest.h>

#include "src/tabs/world.h"

namespace tabs {
namespace {

// A minimal concrete server exposing the library verbatim.
class RawServer : public server::DataServer {
 public:
  explicit RawServer(const server::ServerContext& ctx)
      : DataServer(ctx, Options{.pages = 8}) {}
};

class ServerLibraryTest : public ::testing::Test {
 protected:
  ServerLibraryTest() : world_(1) {
    srv_ = static_cast<RawServer*>(world_.AddServer(
        1, "raw", [](const server::ServerContext& ctx) {
          return std::make_unique<RawServer>(ctx);
        }));
  }

  World world_;
  RawServer* srv_;
};

TEST_F(ServerLibraryTest, CreateObjectIdAddressArithmetic) {
  ObjectId oid = srv_->CreateObjectId(1000, 16);
  EXPECT_EQ(oid.offset, 1000u);
  EXPECT_EQ(oid.length, 16u);
  EXPECT_EQ(oid.FirstPage(), 1u);   // 1000 / 512
  EXPECT_EQ(oid.LastPage(), 1u);    // 1015 / 512
  ObjectId spanning = srv_->CreateObjectId(510, 8);
  EXPECT_EQ(spanning.FirstPage(), 0u);
  EXPECT_EQ(spanning.LastPage(), 1u);
}

TEST_F(ServerLibraryTest, PinBufferStageLogRoundTrip) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    ObjectId oid = srv_->CreateObjectId(0, 4);
    ASSERT_EQ(srv_->LockObject(tx, oid, lock::kExclusive), Status::kOk);
    srv_->PinAndBuffer(tx, oid);
    EXPECT_TRUE(srv_->segment().IsPinned(0));
    srv_->Staged(tx, oid) = Bytes{9, 9, 9, 9};
    // Until LogAndUnPin, volatile storage still holds the old value.
    EXPECT_EQ(srv_->ReadObject(oid), (Bytes{0, 0, 0, 0}));
    srv_->LogAndUnPin(tx, oid);
    EXPECT_FALSE(srv_->segment().IsPinned(0));
    EXPECT_EQ(srv_->ReadObject(oid), (Bytes{9, 9, 9, 9}));
    EXPECT_TRUE(srv_->HasUpdates(t));
    app.End(t);
    EXPECT_FALSE(srv_->HasUpdates(t));
  });
}

TEST_F(ServerLibraryTest, AbandonedStagedWriteVanishesAtCommit) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    ObjectId oid = srv_->CreateObjectId(0, 4);
    srv_->LockObject(tx, oid, lock::kExclusive);
    srv_->PinAndBuffer(tx, oid);
    srv_->Staged(tx, oid) = Bytes{1, 1, 1, 1};
    // The operation never called LogAndUnPin (say, it hit an error path).
    app.End(t);
    EXPECT_EQ(srv_->ReadObject(oid), (Bytes{0, 0, 0, 0}));
    EXPECT_FALSE(srv_->segment().IsPinned(0));  // pin was released by cleanup
  });
}

TEST_F(ServerLibraryTest, LockAndMarkFlowPinsAndLogsInBulk) {
  // The B-tree port pattern: set every lock first, then pin, modify, log.
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    std::vector<ObjectId> oids;
    for (std::uint32_t i = 0; i < 4; ++i) {
      ObjectId oid = srv_->CreateObjectId(i * 8, 4);
      oids.push_back(oid);
      ASSERT_EQ(srv_->LockAndMark(tx, oid, lock::kExclusive), Status::kOk);
    }
    srv_->PinAndBufferMarkedObjects(tx);
    for (std::uint32_t i = 0; i < 4; ++i) {
      srv_->Staged(tx, oids[i]) = Bytes{std::uint8_t(i + 1), 0, 0, 0};
    }
    srv_->LogAndUnPinMarkedObjects(tx);
    app.End(t);
    app.Transaction([&](const server::Tx& tx2) {
      for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(srv_->ReadObject(oids[i])[0], i + 1);
      }
      return Status::kOk;
    });
  });
}

TEST_F(ServerLibraryTest, WriteValueConvenienceIsAtomicWithAbort) {
  world_.RunApp(1, [&](Application& app) {
    ObjectId oid = srv_->CreateObjectId(0, 4);
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    srv_->LockObject(tx, oid, lock::kExclusive);
    srv_->WriteValue(tx, oid, Bytes{5, 5, 5, 5});
    EXPECT_EQ(srv_->ReadObject(oid), (Bytes{5, 5, 5, 5}));
    app.Abort(t);
    EXPECT_EQ(srv_->ReadObject(oid), (Bytes{0, 0, 0, 0}));
    EXPECT_FALSE(srv_->IsObjectLocked(oid));
  });
}

TEST_F(ServerLibraryTest, ExecuteTransactionCommitsIndependently) {
  world_.RunApp(1, [&](Application& app) {
    ObjectId oid = srv_->CreateObjectId(0, 4);
    // The IO-server pattern: a client transaction aborts, but data written
    // through ExecuteTransaction stays.
    TransactionId client = app.Begin();
    Status s = srv_->ExecuteTransaction([&](const server::Tx& io_tx) {
      srv_->LockObject(io_tx, oid, lock::kExclusive);
      srv_->WriteValue(io_tx, oid, Bytes{7, 7, 7, 7});
      return Status::kOk;
    });
    EXPECT_EQ(s, Status::kOk);
    app.Abort(client);
    EXPECT_EQ(srv_->ReadObject(oid), (Bytes{7, 7, 7, 7}));
  });
}

TEST_F(ServerLibraryTest, ExecuteTransactionAbortsOnBodyFailure) {
  world_.RunApp(1, [&](Application& app) {
    ObjectId oid = srv_->CreateObjectId(0, 4);
    Status s = srv_->ExecuteTransaction([&](const server::Tx& io_tx) {
      srv_->LockObject(io_tx, oid, lock::kExclusive);
      srv_->WriteValue(io_tx, oid, Bytes{3, 3, 3, 3});
      return Status::kConflict;  // the body reports failure
    });
    EXPECT_EQ(s, Status::kConflict);
    EXPECT_EQ(srv_->ReadObject(oid), (Bytes{0, 0, 0, 0}));
  });
}

TEST_F(ServerLibraryTest, CallChargesLocalPrimitive) {
  world_.RunApp(1, [&](Application& app) {
    TransactionId t = app.Begin();
    server::Tx tx = app.MakeTx(t);
    world_.metrics().Reset();
    srv_->Call<bool>(tx, "nop", []() -> Result<bool> { return true; });
    EXPECT_EQ(world_.metrics().Total().Of(sim::Primitive::kDataServerCall), 1.0);
    app.Abort(t);
  });
}

}  // namespace
}  // namespace tabs
